"""Tests for HELLO beaconing (repro.sim.beacon)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.sim import HelloProtocol, Simulation


@pytest.fixture
def mobile_sim(params) -> Simulation:
    return Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=11
    )


class TestConstruction:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            HelloProtocol("oracle")

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            HelloProtocol("periodic", interval=0.0)

    def test_default_timeout_multiple(self):
        hello = HelloProtocol("periodic", interval=2.0)
        assert hello.timeout == pytest.approx(5.0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            HelloProtocol("periodic", interval=1.0, timeout=-1.0)


class TestEventMode:
    def test_initial_neighbor_lists_seeded(self, mobile_sim):
        hello = mobile_sim.attach(HelloProtocol("event"))
        for node in range(0, mobile_sim.n_nodes, 13):
            assert hello.known_neighbors(node) == set(
                int(v) for v in mobile_sim.neighbors_of(node)
            )

    def test_two_hellos_per_link_generation(self, mobile_sim, params):
        hello = mobile_sim.attach(HelloProtocol("event"))
        mobile_sim.stats.start_measuring()
        generations = 0
        for _ in range(50):
            generations += mobile_sim.step().generation_count
        assert mobile_sim.stats.message_count("hello") == 2 * generations
        assert mobile_sim.stats.bit_count("hello") == pytest.approx(
            2 * generations * params.messages.p_hello
        )

    def test_neighbor_lists_track_adjacency_exactly(self, mobile_sim):
        hello = mobile_sim.attach(HelloProtocol("event"))
        for _ in range(60):
            mobile_sim.step()
        assert hello.detection_errors(mobile_sim) == 0

    def test_rate_matches_link_generation_rate(self):
        # f_hello == lambda_gen: the Eqn (4) identity, measured.
        params = NetworkParameters.from_fractions(
            n_nodes=150, range_fraction=0.15, velocity_fraction=0.05
        )
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=1
        )
        sim.attach(HelloProtocol("event"))
        generations = 0
        sim.stats.start_measuring()
        steps = 400
        for _ in range(steps):
            generations += sim.step().generation_count
        f_hello = sim.stats.per_node_frequency("hello")
        lambda_gen = 2 * generations / (params.n_nodes * steps * sim.dt)
        assert f_hello == pytest.approx(lambda_gen, rel=1e-9)


class TestPeriodicMode:
    def test_beacon_rate_matches_interval(self, params):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=12
        )
        interval = 0.5
        sim.attach(HelloProtocol("periodic", interval=interval))
        sim.stats.start_measuring()
        duration = 5.0
        for _ in range(int(round(duration / sim.dt))):
            sim.step()
        rate = sim.stats.per_node_frequency("hello")
        assert rate == pytest.approx(1.0 / interval, rel=0.1)

    def test_neighbors_learned_within_interval(self, params):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=13
        )
        hello = sim.attach(HelloProtocol("periodic", interval=0.2))
        for _ in range(int(round(1.5 / sim.dt))):
            sim.step()
        # Steady-state staleness is bounded by the soft-timer physics:
        # each of the ~(N * lambda_brk / 2) break events per unit time
        # leaves two stale entries for at most `timeout`, and each
        # generation is learned within one beacon interval.
        from repro.core.degree import expected_degree
        from repro.core.linkdynamics import bcv_link_break_rate

        degree = float(
            expected_degree(params.n_nodes, params.density, params.tx_range)
        )
        break_rate = bcv_link_break_rate(
            degree, params.tx_range, params.velocity
        )
        expected_stale = params.n_nodes * break_rate * hello.timeout
        expected_missing = params.n_nodes * break_rate * hello.interval
        bound = 2.0 * (expected_stale + expected_missing)  # 2x safety
        assert hello.detection_errors(sim) <= bound

    def test_longer_interval_more_stale(self, params):
        errors = []
        for interval in (0.2, 2.0):
            sim = Simulation(
                params, EpochRandomWaypointModel(params.velocity, 1.0), seed=14
            )
            hello = sim.attach(HelloProtocol("periodic", interval=interval))
            for _ in range(int(round(3.0 / sim.dt))):
                sim.step()
            errors.append(hello.detection_errors(sim))
        assert errors[1] > errors[0]

    def test_timeout_expires_gone_neighbors(self, params):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=15
        )
        hello = sim.attach(
            HelloProtocol("periodic", interval=0.2, timeout=0.5)
        )
        for _ in range(int(round(4.0 / sim.dt))):
            sim.step()
        # No believed neighbor may be staler than the timeout allows:
        # every believed-but-false entry must have been heard recently.
        for node in range(sim.n_nodes):
            actual = {int(v) for v in sim.neighbors_of(node)}
            for other, heard in hello.neighbor_lists[node].items():
                if other not in actual:
                    assert sim.time - heard <= hello.timeout + sim.dt
