"""Tests for the packet-level data plane (repro.sim.traffic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.routing import (
    AodvProtocol,
    DsdvProtocol,
    HybridRoutingProtocol,
    IntraClusterRoutingProtocol,
)
from repro.sim import (
    AodvRouterAdapter,
    CbrFlow,
    DsdvRouterAdapter,
    HybridRouterAdapter,
    HelloProtocol,
    Simulation,
    TrafficProtocol,
    TrafficStats,
)


def _dsdv_sim(n=60, vf=0.0, seed=61):
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=0.25, velocity_fraction=vf
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    dsdv = sim.attach(DsdvProtocol(periodic_interval=0.5))
    return sim, dsdv


class TestFlowValidation:
    def test_rejects_self_flow(self):
        with pytest.raises(ValueError):
            CbrFlow(1, 1, 1.0)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            CbrFlow(0, 1, 0.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            CbrFlow(0, 1, 1.0, start=-1.0)

    def test_rejects_bad_ttl(self):
        with pytest.raises(ValueError):
            TrafficProtocol([], DsdvRouterAdapter(None), max_hops=0)


class TestStats:
    def test_empty_stats_nan(self):
        stats = TrafficStats()
        assert np.isnan(stats.delivery_ratio())
        assert np.isnan(stats.mean_latency())
        assert np.isnan(stats.mean_hops())

    def test_ratios(self):
        stats = TrafficStats(generated=10, delivered=6, dropped=2)
        assert stats.delivery_ratio() == pytest.approx(0.75)
        assert stats.in_flight == 2


class TestDsdvForwarding:
    def test_static_network_delivers_everything(self):
        sim, dsdv = _dsdv_sim()
        flows = [CbrFlow(0, 30, interval=0.5), CbrFlow(10, 50, interval=0.7)]
        traffic = sim.attach(
            TrafficProtocol(flows, DsdvRouterAdapter(dsdv))
        )
        for _ in range(int(round(8.0 / sim.dt))):
            sim.step()
        assert traffic.traffic.generated > 10
        assert traffic.traffic.dropped == 0
        assert traffic.traffic.delivered > 0

    def test_latency_matches_hops_times_dt(self):
        """One hop per step: latency == hops * dt exactly (modulo the
        emission step alignment)."""
        sim, dsdv = _dsdv_sim(seed=62)
        traffic = sim.attach(
            TrafficProtocol([CbrFlow(0, 30, interval=1.0)], DsdvRouterAdapter(dsdv))
        )
        for _ in range(int(round(6.0 / sim.dt))):
            sim.step()
        stats = traffic.traffic
        assert stats.delivered > 0
        for latency, hops in zip(stats.latencies, stats.hop_counts):
            # Emission happens during the step, so latency spans
            # [hops-1, hops] steps.
            assert latency <= hops * sim.dt + 1e-9
            assert latency >= (hops - 1) * sim.dt - 1e-9

    def test_hop_counts_are_shortest_paths(self):
        import networkx as nx

        sim, dsdv = _dsdv_sim(seed=63)
        traffic = sim.attach(
            TrafficProtocol([CbrFlow(0, 45, interval=1.0)], DsdvRouterAdapter(dsdv))
        )
        graph = nx.from_numpy_array(sim.adjacency)
        if not nx.has_path(graph, 0, 45):
            pytest.skip("pair unreachable")
        shortest = nx.shortest_path_length(graph, 0, 45)
        for _ in range(int(round(5.0 / sim.dt))):
            sim.step()
        assert traffic.traffic.delivered > 0
        assert all(h == shortest for h in traffic.traffic.hop_counts)

    def test_unreachable_destination_drops(self):
        sim, dsdv = _dsdv_sim(seed=64)
        sim.fail_node(30)
        for _ in range(int(round(2.0 / sim.dt))):
            sim.step()
        traffic = sim.attach(
            TrafficProtocol([CbrFlow(0, 30, interval=0.5)], DsdvRouterAdapter(dsdv))
        )
        for _ in range(int(round(3.0 / sim.dt))):
            sim.step()
        assert traffic.traffic.delivered == 0
        assert traffic.traffic.dropped > 0


class TestHybridForwarding:
    def test_hybrid_delivers_static(self):
        params = NetworkParameters.from_fractions(
            n_nodes=80, range_fraction=0.2, velocity_fraction=0.0
        )
        sim = Simulation(params, EpochRandomWaypointModel(0.0, 1.0), seed=65)
        sim.attach(HelloProtocol("event"))
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        intra = IntraClusterRoutingProtocol(maintenance)
        sim.attach(intra)
        sim.attach(maintenance)
        hybrid = sim.attach(HybridRoutingProtocol(maintenance, intra))
        traffic = sim.attach(
            TrafficProtocol(
                [CbrFlow(0, 40, 0.5), CbrFlow(20, 70, 0.5)],
                HybridRouterAdapter(hybrid),
            )
        )
        for _ in range(int(round(8.0 / sim.dt))):
            sim.step()
        stats = traffic.traffic
        assert stats.delivered > 0
        assert stats.delivery_ratio() > 0.9


class TestAodvForwarding:
    def test_aodv_delivers_under_mobility(self):
        params = NetworkParameters.from_fractions(
            n_nodes=80, range_fraction=0.22, velocity_fraction=0.02
        )
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=66
        )
        aodv = sim.attach(AodvProtocol())
        traffic = sim.attach(
            TrafficProtocol(
                [CbrFlow(0, 40, 0.5)], AodvRouterAdapter(aodv)
            )
        )
        for _ in range(int(round(10.0 / sim.dt))):
            sim.step()
        stats = traffic.traffic
        assert stats.generated >= 18
        assert stats.delivery_ratio() > 0.8


class TestTtl:
    def test_ttl_drops_looping_packets(self):
        """A router that bounces packets between two nodes must hit TTL."""

        class PingPongRouter:
            def next_hop(self, sim, node, destination):
                neighbors = sim.neighbors_of(node)
                return int(neighbors[0]) if len(neighbors) else None

        sim, _ = _dsdv_sim(seed=67)
        traffic = sim.attach(
            TrafficProtocol(
                [CbrFlow(0, 30, interval=10.0)], PingPongRouter(), max_hops=5
            )
        )
        for _ in range(int(round(3.0 / sim.dt))):
            sim.step()
        assert traffic.traffic.dropped >= 1
        assert traffic.traffic.delivered == 0
