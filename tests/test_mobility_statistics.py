"""Statistical properties of the mobility models the analysis relies on.

The paper's Section 4 justifies validating the (B)CV analysis on its
epoch-RWP variant because the variant "has similar properties ... in
terms of link change rate and node spatial distribution".  These tests
verify that equivalence empirically, plus the relative-speed law that
underlies Claim 2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.linkdynamics import cv_link_change_rate, mean_relative_speed
from repro.mobility import (
    ConstantVelocityModel,
    EpochRandomWaypointModel,
    RandomWaypointModel,
)
from repro.spatial import Boundary, SquareRegion, compute_adjacency, diff_adjacency


def _measure_change_rate(model, n, r, dt, steps, seed=0):
    region = SquareRegion(1.0, Boundary.TORUS)
    model.reset(n, region, seed)
    adjacency = compute_adjacency(region, model.positions, r)
    changes = 0
    for _ in range(steps):
        new = compute_adjacency(region, model.advance(dt), r)
        changes += diff_adjacency(adjacency, new).change_count
        adjacency = new
    return 2 * changes / (n * steps * dt)


class TestEpochRwpMatchesCv:
    """The paper's Section 4 equivalence claim."""

    def test_link_change_rates_agree(self):
        n, r, v = 300, 0.06, 0.02
        dt = 0.02 * r / v
        cv_rate = _measure_change_rate(
            ConstantVelocityModel(v), n, r, dt, 300
        )
        rwp_rate = _measure_change_rate(
            EpochRandomWaypointModel(v, epoch=1.0), n, r, dt, 300
        )
        assert rwp_rate == pytest.approx(cv_rate, rel=0.12)

    def test_both_match_claim2(self):
        n, r, v = 300, 0.06, 0.02
        dt = 0.02 * r / v
        theory = cv_link_change_rate(float(n), r, v)
        for model in (
            ConstantVelocityModel(v),
            EpochRandomWaypointModel(v, epoch=1.0),
        ):
            measured = _measure_change_rate(model, n, r, dt, 300)
            assert measured == pytest.approx(theory, rel=0.12)

    def test_spatial_distribution_stays_uniform(self):
        region = SquareRegion(1.0, Boundary.TORUS)
        model = EpochRandomWaypointModel(0.1, epoch=0.5)
        model.reset(4000, region, 1)
        for _ in range(80):
            model.advance(0.25)
        positions = np.asarray(model.positions)
        # Chi-square on a 4x4 occupancy grid.
        counts, _, _ = np.histogram2d(
            positions[:, 0], positions[:, 1], bins=4, range=[[0, 1], [0, 1]]
        )
        expected = 4000 / 16
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 15 dof; the 99.9% quantile is ~37.7.
        assert chi2 < 37.7


class TestRelativeSpeedLaw:
    def test_cv_pairwise_relative_speed(self):
        """E[|v_i - v_j|] = 4v/pi across CV node pairs."""
        region = SquareRegion(1.0, Boundary.TORUS)
        model = ConstantVelocityModel(0.3)
        model.reset(2000, region, 2)
        velocities = np.asarray(model.velocities)
        rng = np.random.default_rng(3)
        idx = rng.integers(0, 2000, size=(20_000, 2))
        rel = velocities[idx[:, 0]] - velocities[idx[:, 1]]
        same = idx[:, 0] == idx[:, 1]
        speeds = np.hypot(rel[:, 0], rel[:, 1])[~same]
        assert speeds.mean() == pytest.approx(
            mean_relative_speed(0.3), rel=0.02
        )


class TestRwpContrast:
    """Classic RWP deliberately lacks the CV statistics (the reason the
    paper analyzes BCV instead)."""

    def test_rwp_density_not_uniform(self):
        region = SquareRegion(1.0, Boundary.OPEN)
        model = RandomWaypointModel((0.05, 0.15))
        model.reset(4000, region, 4)
        for _ in range(100):
            model.advance(0.5)
        positions = np.asarray(model.positions)
        counts, _, _ = np.histogram2d(
            positions[:, 0], positions[:, 1], bins=4, range=[[0, 1], [0, 1]]
        )
        center_mass = counts[1:3, 1:3].sum() / 4000
        # Uniform would give 0.25; RWP concentrates well above that.
        assert center_mass > 0.30
