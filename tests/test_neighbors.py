"""Tests for adjacency computation and link-event diffing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial import (
    Boundary,
    LinkEvents,
    SquareRegion,
    UniformGridIndex,
    compute_adjacency,
    degree_counts,
    diff_adjacency,
)


class TestComputeAdjacency:
    def test_dense_path(self, unit_torus, rng):
        positions = unit_torus.uniform_positions(100, rng)
        adjacency = compute_adjacency(unit_torus, positions, 0.2)
        np.testing.assert_array_equal(
            adjacency, unit_torus.adjacency(positions, 0.2)
        )

    def test_explicit_index_path(self, unit_torus, rng):
        positions = unit_torus.uniform_positions(100, rng)
        index = UniformGridIndex(unit_torus, 0.2)
        adjacency = compute_adjacency(unit_torus, positions, 0.2, index)
        np.testing.assert_array_equal(
            adjacency, unit_torus.adjacency(positions, 0.2)
        )

    def test_auto_grid_for_large_sparse(self):
        region = SquareRegion(10.0, Boundary.TORUS)
        positions = region.uniform_positions(900, 0)
        adjacency = compute_adjacency(region, positions, 0.5)
        np.testing.assert_array_equal(
            adjacency, region.adjacency(positions, 0.5)
        )


class TestDiffAdjacency:
    def test_no_change(self, small_adjacency):
        events = diff_adjacency(small_adjacency, small_adjacency)
        assert events.generation_count == 0
        assert events.break_count == 0
        assert events.change_count == 0

    def test_single_generation(self, small_adjacency):
        after = small_adjacency.copy()
        after[0, 5] = after[5, 0] = True
        events = diff_adjacency(small_adjacency, after)
        assert events.generation_count == 1
        assert events.break_count == 0
        np.testing.assert_array_equal(events.generated, [[0, 5]])

    def test_single_break(self, small_adjacency):
        after = small_adjacency.copy()
        after[1, 2] = after[2, 1] = False
        events = diff_adjacency(small_adjacency, after)
        assert events.break_count == 1
        np.testing.assert_array_equal(events.broken, [[1, 2]])

    def test_mixed_events(self, small_adjacency):
        after = small_adjacency.copy()
        after[0, 1] = after[1, 0] = False
        after[0, 4] = after[4, 0] = True
        after[1, 5] = after[5, 1] = True
        events = diff_adjacency(small_adjacency, after)
        assert events.break_count == 1
        assert events.generation_count == 2
        assert events.change_count == 3

    def test_pairs_are_upper_triangle_sorted(self):
        n = 8
        before = np.zeros((n, n), dtype=bool)
        after = np.zeros((n, n), dtype=bool)
        for u, v in [(7, 2), (3, 1), (5, 4)]:
            after[u, v] = after[v, u] = True
        events = diff_adjacency(before, after)
        np.testing.assert_array_equal(events.generated, [[1, 3], [2, 7], [4, 5]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            diff_adjacency(np.zeros((3, 3), bool), np.zeros((4, 4), bool))

    def test_events_immutable_semantics(self, small_adjacency):
        events = diff_adjacency(small_adjacency, ~np.eye(6, dtype=bool))
        assert isinstance(events, LinkEvents)
        # Everything not already linked was generated.
        total_possible = 6 * 5 // 2
        existing = small_adjacency.sum() // 2
        assert events.generation_count == total_possible - existing


def test_degree_counts(small_adjacency):
    np.testing.assert_array_equal(
        degree_counts(small_adjacency), [1, 2, 2, 3, 2, 2]
    )
