"""Tests for the P1/P2 property validators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import ClusterState, assert_valid, check_properties


def _two_cluster_state(n=6):
    state = ClusterState.unassigned(n)
    state.make_head(0)
    state.make_member(1, 0)
    state.make_member(2, 0)
    state.make_head(3)
    state.make_member(4, 3)
    state.make_member(5, 3)
    return state


class TestCheckProperties:
    def test_valid_structure(self, small_adjacency):
        # small_adjacency: 0-1-2-3-4, 3-5, 4-5.
        state = ClusterState.unassigned(6)
        state.make_head(0)
        state.make_member(1, 0)
        state.make_head(2)
        state.make_member(3, 2)
        state.make_head(4)  # adjacent to 3? 3-4 yes but 3 is member: fine
        state.make_member(5, 4)
        violations = check_properties(state, small_adjacency)
        assert violations.ok
        assert violations.describe().startswith("cluster structure satisfies")

    def test_p1_adjacent_heads(self, small_adjacency):
        state = _two_cluster_state()
        # Heads 0 and 3 are not adjacent in small_adjacency (0-1-2-3),
        # so make 2 a head adjacent to 3.
        state.make_head(2)
        violations = check_properties(state, small_adjacency)
        assert (2, 3) in violations.adjacent_heads
        assert not violations.ok

    def test_p2_unaffiliated(self, small_adjacency):
        state = _two_cluster_state()
        state.roles[5] = 0  # Role.UNASSIGNED
        state.head_of[5] = -1
        violations = check_properties(state, small_adjacency)
        assert 5 in violations.unaffiliated

    def test_p2_detached_member(self, small_adjacency):
        state = ClusterState.unassigned(6)
        state.make_head(0)
        for node in range(1, 6):
            state.make_member(node, 0)  # nodes 2..5 are not neighbors of 0
        violations = check_properties(state, small_adjacency)
        assert set(violations.detached_members) == {2, 3, 4, 5}

    def test_p2_dangling_member(self, small_adjacency):
        state = _two_cluster_state()
        # Demote head 0 without re-homing member 1.
        state.roles[0] = 1  # Role.MEMBER
        state.head_of[0] = 3
        violations = check_properties(state, small_adjacency)
        assert 1 in violations.dangling_members

    def test_shape_mismatch_rejected(self):
        state = ClusterState.unassigned(4)
        with pytest.raises(ValueError):
            check_properties(state, np.zeros((3, 3), dtype=bool))


class TestAssertValid:
    def test_passes_on_valid(self, small_adjacency):
        state = ClusterState.unassigned(6)
        for node in range(6):
            state.make_head(node)
        # All heads adjacent -> P1 violated; build a valid one instead.
        state = ClusterState.unassigned(6)
        state.make_head(0)
        state.make_member(1, 0)
        state.make_head(2)
        state.make_member(3, 2)
        state.make_head(4)
        state.make_member(5, 4)
        assert_valid(state, small_adjacency)  # does not raise

    def test_raises_with_description(self, small_adjacency):
        state = ClusterState.unassigned(6)
        for node in range(6):
            state.make_head(node)
        with pytest.raises(AssertionError, match="P1"):
            assert_valid(state, small_adjacency)
