"""Tests for routing message descriptors."""

from __future__ import annotations

import pytest

from repro.core.params import MessageSizes
from repro.routing import (
    RouteEntry,
    rerr_bits,
    route_update_bits,
    rrep_bits,
    rreq_bits,
)


class TestRouteEntry:
    def test_reachable(self):
        assert RouteEntry(1, 2, 3.0).reachable

    def test_infinite_metric_unreachable(self):
        assert not RouteEntry(1, 2, float("inf"), 5).reachable

    def test_frozen(self):
        entry = RouteEntry(1, 2, 3.0)
        with pytest.raises(AttributeError):
            entry.metric = 1.0


class TestBitAccounting:
    def test_update_scales_with_entries(self):
        sizes = MessageSizes(p_route=100.0)
        assert route_update_bits(sizes, 5) == pytest.approx(500.0)
        assert route_update_bits(sizes, 0) == 0.0

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            route_update_bits(MessageSizes(), -1)

    def test_reactive_packets_one_entry_each(self):
        sizes = MessageSizes(p_route=64.0)
        assert rreq_bits(sizes) == 64.0
        assert rrep_bits(sizes) == 64.0
        assert rerr_bits(sizes) == 64.0
