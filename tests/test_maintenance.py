"""Tests for reactive cluster maintenance (the CLUSTER message source)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    ClusterMaintenanceProtocol,
    HighestConnectivityClustering,
    LowestIdClustering,
    Role,
    check_properties,
)
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.sim import Simulation


def _sim_with_maintenance(n=80, rf=0.18, vf=0.05, seed=0, algorithm=None):
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=rf, velocity_fraction=vf
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    maintenance = ClusterMaintenanceProtocol(algorithm or LowestIdClustering())
    sim.attach(maintenance)
    return sim, maintenance


class TestFormationOnAttach:
    def test_initial_state_valid(self):
        sim, maintenance = _sim_with_maintenance()
        assert check_properties(maintenance.state, sim.adjacency).ok

    def test_head_ratio_accessors(self):
        sim, maintenance = _sim_with_maintenance()
        assert maintenance.head_ratio() == pytest.approx(
            maintenance.cluster_count() / sim.n_nodes
        )


class TestInvariantPreservation:
    """The core maintenance guarantee: P1/P2 hold after every step."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lid_stays_valid_under_mobility(self, seed):
        sim, maintenance = _sim_with_maintenance(seed=seed)
        for _ in range(150):
            sim.step()
            violations = check_properties(maintenance.state, sim.adjacency)
            assert violations.ok, violations.describe()

    def test_hcc_stays_valid_under_mobility(self):
        sim, maintenance = _sim_with_maintenance(
            algorithm=HighestConnectivityClustering(), seed=3
        )
        for _ in range(100):
            sim.step()
            violations = check_properties(maintenance.state, sim.adjacency)
            assert violations.ok, violations.describe()

    def test_fast_mobility_stress(self):
        sim, maintenance = _sim_with_maintenance(vf=0.2, seed=4)
        for _ in range(100):
            sim.step()
            assert check_properties(maintenance.state, sim.adjacency).ok


class TestMessageAccounting:
    def test_no_messages_without_cluster_changes(self):
        # Static network: no link events, no CLUSTER messages.
        sim, maintenance = _sim_with_maintenance(vf=0.0)
        sim.stats.start_measuring()
        for _ in range(20):
            sim.step()
        assert sim.stats.message_count("cluster") == 0

    def test_messages_recorded_under_mobility(self):
        sim, maintenance = _sim_with_maintenance(seed=5)
        sim.stats.start_measuring()
        for _ in range(200):
            sim.step()
        assert sim.stats.message_count("cluster") > 0
        assert sim.stats.bit_count("cluster") == pytest.approx(
            sim.stats.message_count("cluster")
            * sim.params.messages.p_cluster
        )

    def test_member_head_break_sends_one_message(self):
        """Manufacture a member-head break and count exactly 1 CLUSTER."""
        sim, maintenance = _sim_with_maintenance(vf=0.0, seed=6)
        state = maintenance.state
        members = np.flatnonzero(state.roles == Role.MEMBER)
        # Find a member with another head in range (so it re-affiliates
        # rather than becoming a head; either way it is one message).
        member = int(members[0])
        head = int(state.head_of[member])
        sim.adjacency[member, head] = sim.adjacency[head, member] = False
        sim.stats.start_measuring()
        maintenance.on_link_down(sim, min(member, head), max(member, head), 0.0)
        assert sim.stats.message_count("cluster") == 1
        # The member found a new affiliation.
        assert state.head_of[member] != head or state.is_head(member)

    def test_head_merge_sends_cluster_size_messages(self):
        """A P1 violation re-affiliates the loser's whole cluster."""
        sim, maintenance = _sim_with_maintenance(vf=0.0, seed=7)
        state = maintenance.state
        heads = state.heads()
        assert len(heads) >= 2
        # Pick the two heads and force a link-up between them.
        winner, loser = int(heads[0]), int(heads[1])  # lid: lower id wins
        loser_cluster_size = len(state.cluster_nodes(loser))
        sim.adjacency[winner, loser] = sim.adjacency[loser, winner] = True
        sim.stats.start_measuring()
        maintenance.on_link_up(sim, winner, loser, 0.0)
        # Loser resigns (1 message) + each former member re-affiliates.
        assert sim.stats.message_count("cluster") == loser_cluster_size
        assert not state.is_head(loser)
        assert check_properties(maintenance.state, sim.adjacency).ok

    def test_irrelevant_link_events_are_free(self):
        sim, maintenance = _sim_with_maintenance(vf=0.0, seed=8)
        state = maintenance.state
        members = np.flatnonzero(state.roles == Role.MEMBER)
        # A link between two members of different clusters is ignored.
        pairs = [
            (int(a), int(b))
            for i, a in enumerate(members)
            for b in members[i + 1 :]
            if state.head_of[a] != state.head_of[b]
        ]
        if not pairs:
            pytest.skip("topology produced no cross-cluster member pair")
        u, v = pairs[0]
        sim.stats.start_measuring()
        sim.adjacency[u, v] = sim.adjacency[v, u] = True
        maintenance.on_link_up(sim, min(u, v), max(u, v), 0.0)
        assert sim.stats.message_count("cluster") == 0


class TestChangeListeners:
    def test_listener_fires_per_affected_node(self):
        sim, maintenance = _sim_with_maintenance(vf=0.0, seed=9)
        state = maintenance.state
        heads = state.heads()
        winner, loser = int(heads[0]), int(heads[1])
        changed = []
        maintenance.add_change_listener(
            lambda _sim, node, _time: changed.append(node)
        )
        loser_cluster = set(int(x) for x in state.cluster_nodes(loser))
        sim.adjacency[winner, loser] = sim.adjacency[loser, winner] = True
        maintenance.on_link_up(sim, winner, loser, 0.0)
        assert set(changed) == loser_cluster

    def test_lcc_member_does_not_switch_heads(self):
        """LCC: a member gaining a link to a better head stays put."""
        sim, maintenance = _sim_with_maintenance(vf=0.0, seed=10)
        state = maintenance.state
        members = np.flatnonzero(state.roles == Role.MEMBER)
        heads = state.heads()
        for member in members:
            for head in heads:
                if head != state.head_of[member] and not sim.adjacency[member, head]:
                    sim.adjacency[member, head] = True
                    sim.adjacency[head, member] = True
                    before = int(state.head_of[member])
                    maintenance.on_link_up(
                        sim, min(member, head), max(member, head), 0.0
                    )
                    assert int(state.head_of[member]) == before
                    return
        pytest.skip("no member/foreign-head pair available")
