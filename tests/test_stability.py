"""Tests for cluster stability tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    ClusterMaintenanceProtocol,
    LowestIdClustering,
    StabilitySummary,
    StabilityTracker,
)
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.sim import Simulation


def _tracked_sim(vf=0.05, seed=0, n=80):
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=0.18, velocity_fraction=vf
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    sim.attach(maintenance)
    tracker = sim.attach(StabilityTracker(maintenance))
    return sim, maintenance, tracker


class TestAttachOrdering:
    def test_requires_formed_maintenance(self):
        params = NetworkParameters.from_fractions(
            n_nodes=20, range_fraction=0.2, velocity_fraction=0.0
        )
        sim = Simulation(params, EpochRandomWaypointModel(0.0, 1.0), seed=0)
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        tracker = StabilityTracker(maintenance)
        with pytest.raises(RuntimeError, match="after the maintenance"):
            sim.attach(tracker)

    def test_summary_before_attach_raises(self):
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        tracker = StabilityTracker(maintenance)
        with pytest.raises(RuntimeError, match="never attached"):
            tracker.summary()


class TestStaticNetwork:
    def test_no_changes_when_static(self):
        sim, _, tracker = _tracked_sim(vf=0.0)
        for _ in range(30):
            sim.step()
        summary = tracker.summary()
        assert summary.head_changes == 0
        assert summary.affiliation_changes == 0
        assert summary.head_change_rate == 0.0

    def test_tenures_age_with_time(self):
        sim, _, tracker = _tracked_sim(vf=0.0)
        for _ in range(20):
            sim.step()
        summary = tracker.summary()
        # Open tenures count at their current age == observed time.
        assert summary.mean_head_tenure == pytest.approx(
            summary.observed_time, rel=1e-6
        )
        assert summary.mean_affiliation_tenure == pytest.approx(
            summary.observed_time, rel=1e-6
        )


class TestMobileNetwork:
    def test_changes_accumulate(self):
        sim, _, tracker = _tracked_sim(vf=0.08, seed=1)
        for _ in range(150):
            sim.step()
        summary = tracker.summary()
        assert summary.head_changes > 0
        assert summary.affiliation_changes >= summary.head_changes
        assert summary.mean_head_tenure < summary.observed_time
        assert summary.affiliation_change_rate > 0.0

    def test_faster_mobility_less_stable(self):
        def affiliation_rate(vf):
            sim, _, tracker = _tracked_sim(vf=vf, seed=2)
            for _ in range(120):
                sim.step()
            return tracker.summary().affiliation_change_rate

        assert affiliation_rate(0.12) > affiliation_rate(0.02)

    def test_affiliation_rate_tracks_cluster_message_rate(self):
        """Each affiliation change costs exactly one CLUSTER message,
        so the two rates must agree."""
        sim, maintenance, tracker = _tracked_sim(vf=0.06, seed=3)
        sim.stats.start_measuring()
        for _ in range(200):
            sim.step()
        summary = tracker.summary()
        cluster_rate = sim.stats.per_node_frequency("cluster")
        assert summary.affiliation_change_rate == pytest.approx(
            cluster_rate, rel=0.05
        )

    def test_summary_type(self):
        sim, _, tracker = _tracked_sim(seed=4)
        sim.step()
        assert isinstance(tracker.summary(), StabilitySummary)
