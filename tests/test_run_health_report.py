"""Run-health wiring and the `repro-manet report` command.

The acceptance invariant: the report's per-category message totals are
the ones ``trace-summary`` computes — both views are produced from the
same :func:`repro.obs.summarize_trace` aggregation, and the tests here
pin that reconciliation end to end through the CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.mobility import EpochRandomWaypointModel
from repro.obs import (
    JsonlTracer,
    RunHealthConfig,
    attach_run_health,
    build_report,
    observe,
    summarize_trace,
)
from repro.routing import IntraClusterRoutingProtocol
from repro.sim import HelloProtocol, Simulation


def _traced_health_run(params, path, seed=0, rtol=0.5):
    """One full-stack run with the run-health layer, traced to ``path``."""
    config = RunHealthConfig(
        audit_every=1.0, strict=False, residual_window=1.0,
        residual_rtol=rtol,
    )
    with JsonlTracer(path, step_every=5) as tracer:
        with observe(tracer=tracer, health=config):
            sim = Simulation(
                params,
                EpochRandomWaypointModel(params.velocity, epoch=1.0),
                seed=seed,
            )
            sim.attach(HelloProtocol(mode="event"))
            maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
            sim.attach(IntraClusterRoutingProtocol(maintenance))
            sim.attach(maintenance)
            auditor, monitor = attach_run_health(sim, maintenance)
            assert auditor is not None and monitor is not None
            sim.run(duration=3.0, warmup=0.5)
    return sim


class TestAttachRunHealth:
    def test_noop_without_ambient_config(self, params):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, epoch=1.0)
        )
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        sim.attach(maintenance)
        before = len(sim.protocols)
        assert attach_run_health(sim, maintenance) == (None, None)
        assert len(sim.protocols) == before

    def test_hello_only_stack_monitors_hello_only(self, params):
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, epoch=1.0)
        )
        sim.attach(HelloProtocol(mode="event"))
        auditor, monitor = attach_run_health(
            sim, None, config=RunHealthConfig()
        )
        assert auditor is None
        assert monitor is not None
        assert monitor.categories == ("hello",)


class TestReportReconciliation:
    def test_report_totals_match_trace_summary_exactly(
        self, params, tmp_path
    ):
        path = tmp_path / "health.jsonl"
        _traced_health_run(params, path)
        summary = summarize_trace(path)
        report = build_report([path])
        health = report.traces[0]
        assert health.summary.messages == summary.messages
        assert health.summary.bits == summary.bits
        assert health.summary.reconciles()
        text = report.render()
        for category, count in summary.messages.items():
            assert f"| {category} | {count} |" in text

    def test_traced_run_contains_health_events(self, params, tmp_path):
        path = tmp_path / "health.jsonl"
        _traced_health_run(params, path)
        summary = summarize_trace(path)
        assert summary.event_counts.get("invariant_audit", 0) > 0
        assert summary.event_counts.get("residual", 0) > 0

    def test_healthy_run_renders_healthy(self, params, tmp_path):
        path = tmp_path / "health.jsonl"
        _traced_health_run(params, path, rtol=0.9)
        report = build_report([path])
        assert report.problems() == []
        assert report.healthy
        assert "Verdict: HEALTHY" in report.render()


class TestReportCli:
    def _minimal_records(self, residual_ok=True):
        return [
            {"event": "run_begin", "t": 0.0, "sim": 0, "n_nodes": 10},
            {"event": "msg_tx", "t": 1.0, "sim": 0, "category": "hello",
             "messages": 4, "bits": 128.0},
            {"event": "invariant_audit", "t": 1.0, "sim": 0, "ok": True,
             "audits": 1, "violations": 0, "adjacent_heads": 0,
             "unaffiliated": 0, "detached_members": 0,
             "dangling_members": 0},
            {"event": "residual", "t": 2.0, "sim": 0, "kind": "window",
             "category": "hello", "window_start": 0.0, "elapsed": 2.0,
             "measured": 0.2, "bound": 0.1, "residual": 0.1,
             "rtol": 0.05, "ok": True},
            {"event": "residual", "t": 2.0, "sim": 0, "kind": "final",
             "category": "hello", "elapsed": 2.0,
             "measured": 0.2 if residual_ok else 0.01, "bound": 0.1,
             "residual": 0.1 if residual_ok else -0.09,
             "rtol": 0.05, "ok": residual_ok},
            {"event": "run_end", "t": 2.0, "sim": 0, "measured_time": 2.0,
             "totals": {"hello": {"messages": 4, "bits": 128.0}}},
        ]

    def _write(self, path, records):
        path.write_text(
            "".join(
                json.dumps({"schema": 1, **r}) + "\n" for r in records
            )
        )

    def test_healthy_trace_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        self._write(path, self._minimal_records())
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Run-health report" in out
        assert "Verdict: HEALTHY" in out

    def test_failed_residual_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        self._write(path, self._minimal_records(residual_ok=False))
        assert main(["report", str(path)]) == 1
        assert "UNHEALTHY" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_empty_trace_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path)]) == 2
        assert "malformed trace" in capsys.readouterr().err

    def test_out_writes_markdown_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        self._write(path, self._minimal_records())
        out_path = tmp_path / "report.md"
        assert main(["report", str(path), "--out", str(out_path)]) == 0
        assert "Run-health report" in out_path.read_text()
        assert str(out_path) in capsys.readouterr().out


class TestAuditCliFlags:
    def test_run_with_audit_emits_health_events(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.jsonl"
        code = main(
            [
                "run", "fig1", "--quick",
                "--trace", str(trace_path),
                "--audit", "strict",
                "--sample-resources", "0.2",
            ]
        )
        assert code == 0
        capsys.readouterr()
        summary = summarize_trace(trace_path)
        assert summary.event_counts.get("invariant_audit", 0) > 0
        assert summary.event_counts.get("residual", 0) > 0
        assert summary.event_counts.get("resource_sample", 0) > 0
        assert summary.reconciles(), summary.mismatches()

    def test_sample_resources_requires_trace(self, capsys):
        from repro.cli import main

        code = main(
            ["run", "fig1", "--quick", "--sample-resources", "0.5"]
        )
        assert code == 2
        assert "--sample-resources requires --trace" in (
            capsys.readouterr().err
        )


class TestResourceSamplerDegradation:
    """Satellite: no RSS source must not kill resource sampling."""

    def test_samples_flow_with_rss_none(self, monkeypatch):
        from repro.obs import resources

        monkeypatch.setattr(resources.os.path, "exists", lambda _: False)
        monkeypatch.setattr(resources, "current_rss_kb", lambda: None)
        sampler = resources.ResourceSampler(interval=0.05)
        assert sampler.rss_source == "unavailable"
        sampler.start()
        sampler.stop()
        assert sampler.samples
        for sample in sampler.samples:
            assert sample["rss_kb"] is None
            assert sample["cpu_s"] >= 0.0
        summary = sampler.summary()
        assert summary["rss_kb_max"] is None
        assert summary["rss_kb_mean"] is None
        assert summary["rss_source"] == "unavailable"

    def test_current_rss_kb_none_when_both_sources_fail(self, monkeypatch):
        import builtins

        from repro.obs.resources import current_rss_kb

        real_import = builtins.__import__

        def no_resource(name, *args, **kwargs):
            if name == "resource":
                raise ImportError("no resource module")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(
            "builtins.open",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no procfs")),
        )
        monkeypatch.setattr(builtins, "__import__", no_resource)
        assert current_rss_kb() is None

    def test_report_renders_rss_unavailable(self, tmp_path, capsys):
        import json as _json

        from repro.cli import main

        path = tmp_path / "norss.jsonl"
        records = [
            {"schema": 1, "event": "run_begin", "t": 0.0, "sim": 0,
             "n_nodes": 5},
            {"schema": 1, "event": "resource_sample", "t": 0.5, "sim": 0,
             "wall_s": 0.5, "rss_kb": None, "cpu_s": 0.1,
             "cpu_util": 0.4, "phases": {"mobility": 0.01}},
            {"schema": 1, "event": "run_end", "t": 2.0, "sim": 0,
             "measured_time": 2.0, "totals": {}},
        ]
        path.write_text(
            "".join(_json.dumps(r) + "\n" for r in records)
        )
        code = main(["report", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "RSS: unavailable on this platform" in out
