"""Tests for the declarative scenario runner."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.scenario import (
    ScenarioConfig,
    ScenarioReport,
    load_scenario,
    run_scenario,
)


def _base_config(**overrides) -> ScenarioConfig:
    data = {
        "name": "test",
        "n_nodes": 60,
        "range_fraction": 0.2,
        "velocity_fraction": 0.03,
        "duration": 4.0,
        "warmup": 0.5,
        "seed": 1,
    }
    data.update(overrides)
    return ScenarioConfig.from_dict(data)


class TestConfigValidation:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            ScenarioConfig.from_dict(
                {
                    "name": "x",
                    "n_nodes": 10,
                    "range_fraction": 0.2,
                    "velocity_fraction": 0.0,
                    "typo_key": 1,
                }
            )

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError, match="routing"):
            _base_config(routing="olsr")

    def test_unknown_clustering_rejected(self):
        with pytest.raises(ValueError, match="clustering"):
            _base_config(clustering={"algorithm": "kmeans"})

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            _base_config(duration=0.0)

    def test_network_parameters_derived(self):
        config = _base_config()
        params = config.network_parameters()
        assert params.n_nodes == 60
        assert params.range_fraction == pytest.approx(0.2)

    def test_custom_message_sizes(self):
        config = _base_config(messages={"p_hello": 64.0})
        assert config.network_parameters().messages.p_hello == 64.0


class TestRunScenario:
    def test_hybrid_stack_report(self):
        report = run_scenario(_base_config())
        assert isinstance(report, ScenarioReport)
        assert "hello" in report.frequencies
        assert "cluster" in report.frequencies
        assert "route" in report.frequencies
        assert report.head_ratio is not None
        assert report.traffic is None
        assert report.total_overhead > 0.0

    def test_dsdv_stack(self):
        report = run_scenario(_base_config(routing="dsdv"))
        assert "dsdv" in report.frequencies
        assert report.head_ratio is None

    def test_aodv_stack_with_flows(self):
        report = run_scenario(
            _base_config(
                routing="aodv",
                flows=[{"source": 0, "destination": 30, "interval": 0.5}],
            )
        )
        assert report.traffic is not None
        assert report.traffic["generated"] > 0
        assert 0.0 <= report.traffic["delivery"] <= 1.0

    def test_clustering_only_stack(self):
        report = run_scenario(_base_config(routing="none"))
        assert report.head_ratio is not None
        assert "route" not in report.frequencies

    def test_flows_without_routing_rejected(self):
        config = _base_config(
            routing="none",
            flows=[{"source": 0, "destination": 1, "interval": 1.0}],
        )
        with pytest.raises(ValueError, match="flows"):
            run_scenario(config)

    def test_deterministic(self):
        a = run_scenario(_base_config())
        b = run_scenario(_base_config())
        assert a.frequencies == b.frequencies

    @pytest.mark.parametrize(
        "model",
        ["cv", "epoch-rwp", "rwp", "walk", "direction", "gauss-markov", "manhattan"],
    )
    def test_every_mobility_model(self, model):
        boundary = "torus" if model in ("cv", "epoch-rwp") else "reflect"
        report = run_scenario(
            _base_config(
                mobility={"model": model}, boundary=boundary, duration=2.0
            )
        )
        assert report.total_overhead >= 0.0

    def test_unknown_mobility_rejected(self):
        with pytest.raises(ValueError, match="mobility"):
            run_scenario(_base_config(mobility={"model": "teleport"}))

    @pytest.mark.parametrize("algorithm", ["lid", "hcc", "dmac"])
    def test_every_clustering_algorithm(self, algorithm):
        report = run_scenario(
            _base_config(clustering={"algorithm": algorithm}, duration=2.0)
        )
        assert report.cluster_count >= 1


class TestSerialization:
    def test_report_round_trips_json(self):
        report = run_scenario(_base_config())
        payload = json.dumps(report.to_dict())
        restored = json.loads(payload)
        assert restored["name"] == "test"
        assert restored["total_overhead"] == pytest.approx(report.total_overhead)

    def test_render_mentions_everything(self):
        report = run_scenario(
            _base_config(
                flows=[{"source": 0, "destination": 30, "interval": 0.5}]
            )
        )
        text = report.render()
        assert "scenario: test" in text
        assert "clusters:" in text
        assert "traffic:" in text

    def test_load_scenario_file(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "name": "file",
                    "n_nodes": 30,
                    "range_fraction": 0.25,
                    "velocity_fraction": 0.02,
                    "duration": 2.0,
                }
            )
        )
        config = load_scenario(path)
        assert config.name == "file"
        assert config.n_nodes == 30


class TestCliIntegration:
    def test_simulate_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli",
                    "n_nodes": 30,
                    "range_fraction": 0.25,
                    "velocity_fraction": 0.02,
                    "duration": 2.0,
                    "warmup": 0.2,
                }
            )
        )
        assert main(["simulate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "scenario: cli" in out

    def test_simulate_json_output(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "s.json"
        path.write_text(
            json.dumps(
                {
                    "name": "cli-json",
                    "n_nodes": 30,
                    "range_fraction": 0.25,
                    "velocity_fraction": 0.02,
                    "duration": 2.0,
                }
            )
        )
        assert main(["simulate", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "cli-json"
