"""Tests for the overhead model, Eqns 4-14 (repro.core.overhead)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import overhead as oh
from repro.core.degree import expected_degree, expected_head_degree
from repro.core.linkdynamics import bcv_link_generation_rate
from repro.core.params import MessageSizes, NetworkParameters

PI2 = math.pi**2


@pytest.fixture
def p_head() -> float:
    return 0.2


class TestHello:
    def test_eqn4_equals_generation_rate(self, params):
        degree = expected_degree(params.n_nodes, params.density, params.tx_range)
        assert oh.hello_frequency(params) == pytest.approx(
            bcv_link_generation_rate(degree, params.tx_range, params.velocity)
        )

    def test_eqn5_scales_with_message_size(self, params):
        double = params.with_(
            messages=MessageSizes(p_hello=2 * params.messages.p_hello)
        )
        assert oh.hello_overhead(double) == pytest.approx(
            2 * oh.hello_overhead(params)
        )

    def test_static_network_no_overhead(self, params):
        static = params.with_(velocity=0.0)
        assert oh.hello_frequency(static) == 0.0


class TestClusterFrequency:
    def test_member_break_consistent(self, params, p_head):
        # Per-member rate = lambda_brk / d = 8 v / (pi^2 r).
        expected = 8.0 * params.velocity / (PI2 * params.tx_range)
        assert oh.member_head_break_frequency(params, p_head) == pytest.approx(
            expected
        )

    def test_member_break_printed(self, params, p_head):
        expected = 16.0 * params.velocity * (1 - p_head) / (PI2 * params.tx_range)
        assert oh.member_head_break_frequency(
            params, p_head, "printed"
        ) == pytest.approx(expected)

    def test_head_merge_printed_double_of_consistent(self, params, p_head):
        consistent = oh.head_merge_cluster_message_rate(params, p_head)
        printed = oh.head_merge_cluster_message_rate(params, p_head, "printed")
        assert printed == pytest.approx(2 * consistent)

    def test_head_merge_eqn10_structure(self, params, p_head):
        d_head = expected_head_degree(
            params.n_nodes, params.density, params.tx_range, p_head
        )
        expected = (
            4.0
            * float(d_head)
            * params.velocity
            * params.n_nodes
            / (PI2 * params.tx_range)
        )
        assert oh.head_merge_cluster_message_rate(params, p_head) == pytest.approx(
            expected
        )

    def test_eqn11_is_sum_of_components(self, params, p_head):
        member = (1 - p_head) * oh.member_head_break_frequency(params, p_head)
        merge = (
            oh.head_merge_cluster_message_rate(params, p_head) / params.n_nodes
        )
        assert oh.cluster_frequency(params, p_head) == pytest.approx(member + merge)

    def test_all_heads_no_member_breaks(self, params):
        # P = 1: no members, only head merges remain.
        merge = oh.head_merge_cluster_message_rate(params, 1.0) / params.n_nodes
        assert oh.cluster_frequency(params, 1.0) == pytest.approx(merge)

    def test_invalid_probability(self, params):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                oh.cluster_frequency(params, bad)

    def test_invalid_convention(self, params, p_head):
        with pytest.raises(ValueError, match="convention"):
            oh.cluster_frequency(params, p_head, "bogus")


class TestRouteFrequency:
    def test_eqn13_formula(self, params, p_head):
        numerator = 16.0 * params.velocity * ((1 - p_head) + (1 - p_head) ** 3)
        expected = numerator / (PI2 * params.tx_range * p_head)
        assert oh.route_frequency(params, p_head) == pytest.approx(expected)

    def test_printed_is_half(self, params, p_head):
        assert oh.route_frequency(params, p_head, "printed") == pytest.approx(
            0.5 * oh.route_frequency(params, p_head)
        )

    def test_numerator_algebra(self, params, p_head):
        # (1-P) + (1-P)^3 == (1-P)(2 - (2-P)P): the printed glyph form.
        p = p_head
        assert (1 - p) + (1 - p) ** 3 == pytest.approx(
            (1 - p) * (2 - (2 - p) * p)
        )

    def test_single_cluster_degenerate(self, params):
        # P = 1: every node its own head -> no intra-cluster routes.
        assert oh.route_frequency(params, 1.0) == 0.0

    def test_grows_as_heads_shrink(self, params):
        sparse_heads = oh.route_frequency(params, 0.05)
        many_heads = oh.route_frequency(params, 0.5)
        assert sparse_heads > many_heads


class TestRouteOverhead:
    def test_per_entry(self, params, p_head):
        assert oh.route_overhead(params, p_head) == pytest.approx(
            params.messages.p_route * oh.route_frequency(params, p_head)
        )

    def test_full_table_multiplies_by_cluster_size(self, params, p_head):
        per_entry = oh.route_overhead(params, p_head, full_table=False)
        full = oh.route_overhead(params, p_head, full_table=True)
        assert full == pytest.approx(per_entry / p_head)


class TestTotals:
    def test_total_is_sum(self, params, p_head):
        assert oh.total_overhead(params, p_head) == pytest.approx(
            oh.hello_overhead(params)
            + oh.cluster_overhead(params, p_head)
            + oh.route_overhead(params, p_head)
        )

    def test_breakdown_consistency(self, params, p_head):
        breakdown = oh.overhead_breakdown(params, p_head)
        assert breakdown.total == pytest.approx(oh.total_overhead(params, p_head))
        assert breakdown.frequencies["f_hello"] == breakdown.hello_frequency
        assert breakdown.frequencies["f_cluster"] == breakdown.cluster_frequency
        assert breakdown.frequencies["f_route"] == breakdown.route_frequency
        assert breakdown.head_probability == p_head

    def test_breakdown_degree_fields(self, params, p_head):
        breakdown = oh.overhead_breakdown(params, p_head)
        assert breakdown.degree == pytest.approx(
            float(expected_degree(params.n_nodes, params.density, params.tx_range))
        )
        assert breakdown.head_degree <= breakdown.degree

    def test_all_linear_in_velocity(self, params, p_head):
        fast = params.with_(velocity=2 * params.velocity)
        for fn in (oh.hello_frequency,):
            assert fn(fast) == pytest.approx(2 * fn(params))
        assert oh.cluster_frequency(fast, p_head) == pytest.approx(
            2 * oh.cluster_frequency(params, p_head)
        )
        assert oh.route_frequency(fast, p_head) == pytest.approx(
            2 * oh.route_frequency(params, p_head)
        )


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.01, max_value=0.3),
    st.floats(min_value=0.0, max_value=2.0),
)
def test_overheads_nonnegative_property(p_head, range_fraction, velocity_fraction):
    params = NetworkParameters.from_fractions(
        n_nodes=200,
        range_fraction=range_fraction,
        velocity_fraction=velocity_fraction,
    )
    for convention in ("consistent", "printed"):
        assert oh.cluster_frequency(params, p_head, convention) >= 0.0
        assert oh.route_frequency(params, p_head, convention) >= 0.0
    assert oh.hello_frequency(params) >= 0.0
    assert oh.total_overhead(params, p_head) >= 0.0
