"""End-to-end telemetry: tracing, timing and metrics through real runs.

The closed-loop invariant: the ``msg_tx`` event stream a traced run
emits must reproduce the run's :class:`~repro.sim.stats.MessageStats`
totals *exactly* — same categories, same message counts, same bits.
"""

from __future__ import annotations

import json

import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.mobility import EpochRandomWaypointModel
from repro.obs import (
    CollectingTracer,
    JsonlTracer,
    MetricsRegistry,
    PhaseTimer,
    observe,
    summarize_trace,
)
from repro.routing import IntraClusterRoutingProtocol
from repro.sim import HelloProtocol, Simulation


def _build_stack(params, seed=0, tracer=None, timer=None) -> Simulation:
    sim = Simulation(
        params,
        EpochRandomWaypointModel(params.velocity, epoch=1.0),
        seed=seed,
        tracer=tracer,
        timer=timer,
    )
    sim.attach(HelloProtocol(mode="event"))
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    sim.attach(IntraClusterRoutingProtocol(maintenance))
    sim.attach(maintenance)
    return sim


class TestTraceStatsReconciliation:
    def test_msg_tx_stream_reproduces_stats_totals(self, params):
        tracer = CollectingTracer()
        sim = _build_stack(params, tracer=tracer)
        stats = sim.run(duration=3.0, warmup=1.0)

        traced_messages: dict[str, int] = {}
        traced_bits: dict[str, float] = {}
        for record in tracer.of("msg_tx"):
            category = record["category"]
            traced_messages[category] = (
                traced_messages.get(category, 0) + record["messages"]
            )
            traced_bits[category] = (
                traced_bits.get(category, 0.0) + record["bits"]
            )

        totals = stats.totals
        assert set(traced_messages) == set(totals)
        for category, total in totals.items():
            assert traced_messages[category] == total.messages
            assert traced_bits[category] == pytest.approx(
                total.bits, rel=1e-12
            )

    def test_jsonl_roundtrip_reconciles(self, params, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlTracer(path, step_every=5) as tracer:
            sim = _build_stack(params, tracer=tracer)
            stats = sim.run(duration=3.0, warmup=1.0)
        summary = summarize_trace(path)
        assert summary.reconciles(), summary.mismatches()
        run = summary.runs[sim.sim_id]
        assert run.n_nodes == params.n_nodes
        assert run.measured_time == pytest.approx(stats.measured_time)
        assert run.messages == {
            category: total.messages
            for category, total in stats.totals.items()
        }

    def test_warmup_traffic_is_not_traced(self, params):
        tracer = CollectingTracer()
        sim = _build_stack(params, tracer=tracer)
        sim.run(duration=1.0, warmup=1.0)
        begin = next(
            r for r in tracer.records if r["event"] == "run_begin"
        )
        for record in tracer.of("msg_tx"):
            assert record["t"] >= begin["t"]


class TestTraceEvents:
    def test_run_boundaries_and_link_events(self, params):
        tracer = CollectingTracer()
        sim = _build_stack(params, tracer=tracer)
        sim.run(duration=2.0, warmup=0.5)
        events = {record["event"] for record in tracer.records}
        assert {"run_begin", "run_end", "step"} <= events
        # A 100-node mobile network churns links within 2.5 time units.
        assert "link_up" in events and "link_down" in events
        end = next(r for r in tracer.records if r["event"] == "run_end")
        assert set(end["totals"]) == set(sim.stats.totals)

    def test_cluster_events_have_roles(self, params):
        tracer = CollectingTracer()
        sim = _build_stack(params, tracer=tracer)
        sim.run(duration=2.0, warmup=0.5)
        reaffiliations = tracer.of("cluster_reaffiliation")
        assert reaffiliations, "mobile network must reaffiliate some node"
        for record in reaffiliations:
            assert record["role"] in ("head", "member")
        for record in tracer.of("head_change"):
            assert record["kind"] in ("elect", "resign")

    def test_untraced_run_matches_traced_run(self, params):
        """Tracing must not perturb the simulation itself."""
        plain = _build_stack(params, seed=7)
        stats_plain = plain.run(duration=2.0, warmup=0.5)
        traced = _build_stack(params, seed=7, tracer=CollectingTracer())
        stats_traced = traced.run(duration=2.0, warmup=0.5)
        assert {
            c: (t.messages, t.bits) for c, t in stats_plain.totals.items()
        } == {
            c: (t.messages, t.bits) for c, t in stats_traced.totals.items()
        }


class TestPhaseTimingIntegration:
    def test_engine_charges_kernel_and_protocol_phases(self, params):
        sim = _build_stack(params)
        sim.run(duration=1.0, warmup=0.0)
        report = sim.timing_report()
        phases = {timing.phase for timing in report.phases}
        assert {"mobility", "adjacency", "link_diff"} <= phases
        assert {
            "protocol:hello",
            "protocol:cluster-maintenance",
            "protocol:intra-cluster-routing",
        } <= phases
        assert report.total_seconds > 0.0
        steps = int(round(1.0 / sim.dt))
        by_name = {t.phase: t for t in report.phases}
        assert by_name["adjacency"].calls == steps

    def test_shared_timer_accumulates_across_sims(self, params):
        timer = PhaseTimer()
        for seed in range(2):
            sim = _build_stack(params, seed=seed, timer=timer)
            sim.run(duration=0.5, warmup=0.0)
        steps = int(round(0.5 / Simulation(
            params, EpochRandomWaypointModel(params.velocity, epoch=1.0)
        ).dt))
        by_name = {t.phase: t for t in timer.report().phases}
        assert by_name["mobility"].calls == 2 * steps


class TestAmbientContext:
    def test_simulation_picks_up_ambient_telemetry(self, params):
        tracer = CollectingTracer()
        timer = PhaseTimer()
        registry = MetricsRegistry()
        with observe(tracer=tracer, registry=registry, timer=timer):
            sim = _build_stack(params)
            sim.run(duration=1.0, warmup=0.0)
        assert sim.tracer is tracer
        assert sim.timer is timer
        assert tracer.of("msg_tx")
        assert timer.seconds("adjacency") > 0.0
        # Stats counters landed in the shared registry, labelled by sim.
        hello = registry.counter(
            "messages_total", category="hello", sim=str(sim.sim_id)
        )
        assert hello.value == sim.stats.message_count("hello")

    def test_shared_registry_keeps_sims_separate(self, params):
        registry = MetricsRegistry()
        with observe(registry=registry):
            first = _build_stack(params, seed=0)
            first.run(duration=1.0, warmup=0.0)
            second = _build_stack(params, seed=1)
            second.run(duration=1.0, warmup=0.0)
        assert first.sim_id != second.sim_id
        for sim in (first, second):
            counter = registry.counter(
                "messages_total", category="hello", sim=str(sim.sim_id)
            )
            assert counter.value == sim.stats.message_count("hello")


class TestTraceSummaryCli:
    def test_cli_summarizes_and_reconciles(self, params, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        with JsonlTracer(path) as tracer:
            sim = _build_stack(params, tracer=tracer)
            sim.run(duration=2.0, warmup=0.5)
        assert main(["trace-summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-category message totals" in out
        assert "reconciliation: traced msg_tx events match" in out

    def test_cli_json_output(self, params, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.jsonl"
        with JsonlTracer(path) as tracer:
            sim = _build_stack(params, tracer=tracer)
            sim.run(duration=1.0, warmup=0.0)
        assert main(["trace-summary", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reconciles"] is True
        assert payload["messages"]["hello"] > 0

    def test_cli_exits_nonzero_on_mismatch(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.jsonl"
        records = [
            {"schema": 1, "event": "run_begin", "t": 0.0, "sim": 0, "n_nodes": 5},
            {"schema": 1, "event": "msg_tx", "t": 1.0, "sim": 0,
             "category": "hello", "messages": 1, "bits": 32.0},
            {"schema": 1, "event": "run_end", "t": 2.0, "sim": 0,
             "measured_time": 2.0,
             "totals": {"hello": {"messages": 9, "bits": 32.0}}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert main(["trace-summary", str(path)]) == 1
        assert "RECONCILIATION FAILED" in capsys.readouterr().out

    def test_cli_prints_span_and_link_counts(self, params, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "spans.jsonl"
        with JsonlTracer(path) as tracer:
            sim = _build_stack(params, tracer=tracer)
            sim.run(duration=2.0, warmup=0.5)
        assert main(["trace-summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "causal links" in out
        payload_code = main(["trace-summary", str(path), "--json"])
        assert payload_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"]["started"] == payload["spans"]["ended"] > 0

    def test_cli_missing_file_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace-summary", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_cli_malformed_trace_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "garbage.jsonl"
        path.write_text("{not json}\n")
        assert main(["trace-summary", str(path)]) == 2
        assert "malformed trace" in capsys.readouterr().err


class TestRunCliTelemetryFlags:
    def test_run_with_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        code = main(
            [
                "run",
                "fig1",
                "--quick",
                "--trace",
                str(trace_path),
                "--metrics-json",
                str(metrics_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        summary = summarize_trace(trace_path)
        assert summary.reconciles(), summary.mismatches()
        assert summary.messages.get("hello", 0) > 0
        payload = json.loads(metrics_path.read_text())
        assert payload["schema_version"] == 1
        assert payload["metrics"]["counters"]
        timing_phases = {
            p["phase"] for p in payload["timing"]["phases"]
        }
        assert "adjacency" in timing_phases

    def test_simulate_with_progress_prints_timing(self, tmp_path, capsys):
        from repro.cli import main

        scenario = tmp_path / "s.json"
        scenario.write_text(
            json.dumps(
                {
                    "name": "tiny",
                    "n_nodes": 30,
                    "range_fraction": 0.2,
                    "velocity_fraction": 0.05,
                    "duration": 2.0,
                    "warmup": 0.5,
                }
            )
        )
        assert main(["simulate", str(scenario), "--progress"]) == 0
        out = capsys.readouterr().out
        assert "scenario: tiny" in out
        assert "phase timing (wall-clock)" in out
        assert "adjacency" in out
