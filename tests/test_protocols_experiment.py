"""Tests for the protocol-comparison experiment harness internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import NetworkParameters
from repro.experiments.protocols import (
    _record_trace,
    _traffic_pairs,
    run_traffic_epoch,
)


@pytest.fixture(scope="module")
def shared_trace():
    params = NetworkParameters.from_fractions(
        n_nodes=40, range_fraction=0.25, velocity_fraction=0.03
    )
    trace, dt = _record_trace(params, duration=4.0, seed=1)
    return params, trace, dt


class TestTrafficPairs:
    def test_count_and_distinct_endpoints(self):
        pairs = _traffic_pairs(20, 15, seed=0)
        assert len(pairs) == 15
        assert all(u != v for u, v in pairs)
        assert all(0 <= u < 20 and 0 <= v < 20 for u, v in pairs)

    def test_deterministic(self):
        assert _traffic_pairs(20, 10, seed=3) == _traffic_pairs(20, 10, seed=3)


class TestRunTrafficEpoch:
    def test_unknown_stack_rejected(self, shared_trace):
        params, trace, dt = shared_trace
        with pytest.raises(ValueError, match="unknown stack"):
            run_traffic_epoch("olsr", params, trace, dt, [(0, 1)], warmup=0.5)

    def test_warmup_longer_than_trace_rejected(self, shared_trace):
        params, trace, dt = shared_trace
        with pytest.raises(ValueError, match="too short"):
            run_traffic_epoch("hybrid", params, trace, dt, [(0, 1)], warmup=99.0)

    @pytest.mark.parametrize("stack", ["hybrid", "dsdv", "aodv"])
    def test_metrics_structure(self, shared_trace, stack):
        params, trace, dt = shared_trace
        metrics = run_traffic_epoch(
            stack, params, trace, dt, [(0, 20), (5, 30)], warmup=0.5
        )
        assert set(metrics) == {"overhead", "messages", "delivery"}
        assert metrics["overhead"] >= 0.0
        assert 0.0 <= metrics["delivery"] <= 1.0

    def test_same_trace_same_hybrid_result(self, shared_trace):
        params, trace, dt = shared_trace
        pairs = [(0, 20), (5, 30), (2, 38)]
        a = run_traffic_epoch("hybrid", params, trace, dt, pairs, warmup=0.5)
        b = run_traffic_epoch("hybrid", params, trace, dt, pairs, warmup=0.5)
        assert a == b

    def test_dsdv_overhead_dominated_by_table_dumps(self, shared_trace):
        params, trace, dt = shared_trace
        dsdv = run_traffic_epoch(
            "dsdv", params, trace, dt, [(0, 20)], warmup=0.5
        )
        hybrid = run_traffic_epoch(
            "hybrid", params, trace, dt, [(0, 20)], warmup=0.5
        )
        assert dsdv["overhead"] > hybrid["overhead"]
