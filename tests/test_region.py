"""Tests for square regions and boundary rules (repro.spatial.region)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import Boundary, SquareRegion


class TestConstruction:
    def test_rejects_nonpositive_side(self):
        with pytest.raises(ValueError):
            SquareRegion(0.0)

    def test_boundary_from_string(self):
        region = SquareRegion(1.0, "reflect")
        assert region.boundary is Boundary.REFLECT

    def test_area_and_diameter(self):
        torus = SquareRegion(2.0, Boundary.TORUS)
        assert torus.area == pytest.approx(4.0)
        assert torus.diameter == pytest.approx(2.0 * np.sqrt(0.5))
        open_region = SquareRegion(2.0, Boundary.OPEN)
        assert open_region.diameter == pytest.approx(2.0 * np.sqrt(2.0))


class TestPlacement:
    def test_uniform_positions_inside(self, unit_torus, rng):
        positions = unit_torus.uniform_positions(500, rng)
        assert positions.shape == (500, 2)
        assert np.all(unit_torus.contains(positions))

    def test_deterministic_given_seed(self, unit_torus):
        a = unit_torus.uniform_positions(10, 42)
        b = unit_torus.uniform_positions(10, 42)
        np.testing.assert_array_equal(a, b)

    def test_negative_count_rejected(self, unit_torus):
        with pytest.raises(ValueError):
            unit_torus.uniform_positions(-1)

    def test_roughly_uniform(self, unit_torus):
        positions = unit_torus.uniform_positions(20_000, 0)
        # Quadrant occupancy balanced within a few percent.
        for axis in range(2):
            fraction = np.mean(positions[:, axis] < 0.5)
            assert fraction == pytest.approx(0.5, abs=0.02)


class TestBoundaries:
    def test_torus_wraps(self):
        region = SquareRegion(1.0, Boundary.TORUS)
        raw = np.array([[1.2, -0.3]])
        wrapped, _ = region.apply_boundary(raw)
        np.testing.assert_allclose(wrapped, [[0.2, 0.7]])

    def test_reflect_mirrors_position_and_velocity(self):
        region = SquareRegion(1.0, Boundary.REFLECT)
        raw = np.array([[1.2, 0.5]])
        velocity = np.array([[1.0, 1.0]])
        pos, vel = region.apply_boundary(raw, velocity)
        np.testing.assert_allclose(pos, [[0.8, 0.5]])
        assert vel[0, 0] == -1.0
        assert vel[0, 1] == 1.0

    def test_reflect_multiple_bounces(self):
        region = SquareRegion(1.0, Boundary.REFLECT)
        pos, _ = region.apply_boundary(np.array([[2.3, -1.4]]))
        # 2.3 -> triangle wave: 2.3 mod 2 = 0.3; -1.4 mod 2 = 0.6.
        np.testing.assert_allclose(pos, [[0.3, 0.6]])
        assert np.all(region.contains(pos))

    def test_open_leaves_positions(self):
        region = SquareRegion(1.0, Boundary.OPEN)
        raw = np.array([[1.5, -0.5]])
        pos, _ = region.apply_boundary(raw)
        np.testing.assert_array_equal(pos, raw)

    def test_inputs_not_mutated(self):
        region = SquareRegion(1.0, Boundary.TORUS)
        raw = np.array([[1.2, 0.5]])
        region.apply_boundary(raw)
        np.testing.assert_allclose(raw, [[1.2, 0.5]])


class TestMetric:
    def test_torus_shortcut(self):
        region = SquareRegion(1.0, Boundary.TORUS)
        d = region.distance(np.array([0.05, 0.5]), np.array([0.95, 0.5]))
        assert d == pytest.approx(0.1)

    def test_open_euclidean(self):
        region = SquareRegion(1.0, Boundary.OPEN)
        d = region.distance(np.array([0.05, 0.5]), np.array([0.95, 0.5]))
        assert d == pytest.approx(0.9)

    def test_distance_matrix_symmetric_zero_diagonal(self, unit_torus, rng):
        positions = unit_torus.uniform_positions(50, rng)
        matrix = unit_torus.distance_matrix(positions)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_torus_distance_bounded(self, unit_torus, rng):
        positions = unit_torus.uniform_positions(100, rng)
        matrix = unit_torus.distance_matrix(positions)
        assert matrix.max() <= unit_torus.diameter + 1e-12

    def test_adjacency_excludes_self(self, unit_torus, rng):
        positions = unit_torus.uniform_positions(30, rng)
        adjacency = unit_torus.adjacency(positions, 0.5)
        assert not np.any(np.diag(adjacency))

    def test_adjacency_symmetric(self, unit_torus, rng):
        positions = unit_torus.uniform_positions(60, rng)
        adjacency = unit_torus.adjacency(positions, 0.2)
        np.testing.assert_array_equal(adjacency, adjacency.T)

    def test_adjacency_negative_range_rejected(self, unit_torus, rng):
        with pytest.raises(ValueError):
            unit_torus.adjacency(unit_torus.uniform_positions(5, rng), -0.1)


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=-5.0, max_value=5.0),
    st.floats(min_value=-5.0, max_value=5.0),
)
def test_torus_wrap_idempotent_property(x, y):
    region = SquareRegion(1.0, Boundary.TORUS)
    once, _ = region.apply_boundary(np.array([[x, y]]))
    twice, _ = region.apply_boundary(once)
    np.testing.assert_allclose(once, twice)
    assert np.all(region.contains(once))


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=-3.0, max_value=3.0),
    st.floats(min_value=-3.0, max_value=3.0),
)
def test_reflect_stays_inside_property(x, y):
    region = SquareRegion(1.0, Boundary.REFLECT)
    pos, _ = region.apply_boundary(np.array([[x, y]]))
    assert np.all(region.contains(pos))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_torus_metric_symmetry_property(seed):
    region = SquareRegion(1.0, Boundary.TORUS)
    points = region.uniform_positions(2, seed)
    d_ab = region.distance(points[0], points[1])
    d_ba = region.distance(points[1], points[0])
    assert d_ab == pytest.approx(d_ba)
    assert d_ab <= region.diameter + 1e-12
