"""Tests for cluster state and the sequential formation skeleton."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import ClusterState, Role, sequential_formation


class TestClusterState:
    def test_unassigned_fresh(self):
        state = ClusterState.unassigned(5)
        assert state.n_nodes == 5
        assert np.all(state.roles == Role.UNASSIGNED)
        assert np.all(state.head_of == -1)
        assert state.cluster_count() == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ClusterState.unassigned(0)

    def test_make_head_and_member(self):
        state = ClusterState.unassigned(4)
        state.make_head(0)
        state.make_member(1, 0)
        assert state.is_head(0)
        assert not state.is_head(1)
        assert state.head_of[1] == 0
        np.testing.assert_array_equal(state.members_of(0), [1])
        np.testing.assert_array_equal(state.cluster_nodes(0), [0, 1])

    def test_member_of_non_head_rejected(self):
        state = ClusterState.unassigned(3)
        with pytest.raises(ValueError):
            state.make_member(1, 0)

    def test_self_membership_rejected(self):
        state = ClusterState.unassigned(3)
        state.make_head(0)
        with pytest.raises(ValueError):
            state.make_member(0, 0)

    def test_head_ratio_and_sizes(self):
        state = ClusterState.unassigned(6)
        state.make_head(0)
        state.make_head(3)
        for node, head in [(1, 0), (2, 0), (4, 3), (5, 3)]:
            state.make_member(node, head)
        assert state.head_ratio() == pytest.approx(2 / 6)
        np.testing.assert_array_equal(state.cluster_sizes(), [3, 3])

    def test_same_cluster(self):
        state = ClusterState.unassigned(4)
        state.make_head(0)
        state.make_member(1, 0)
        state.make_head(2)
        assert state.same_cluster(0, 1)
        assert not state.same_cluster(1, 2)
        # Unassigned nodes belong to no cluster.
        assert not state.same_cluster(3, 3)

    def test_copy_is_deep(self):
        state = ClusterState.unassigned(3)
        state.make_head(0)
        clone = state.copy()
        clone.make_head(1)
        assert not state.is_head(1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClusterState(np.zeros(3, dtype=np.int8), np.zeros(4, dtype=np.int64))


class TestSequentialFormation:
    def test_path_topology(self, small_adjacency):
        # Priorities = -index: node 0 first.
        priority = -np.arange(6, dtype=float)
        state = sequential_formation(small_adjacency, priority)
        # 0 heads {0,1}; 2 heads {2,3}; 4 heads {4,5}.
        assert state.is_head(0) and state.head_of[1] == 0
        assert state.is_head(2) and state.head_of[3] == 2
        assert state.is_head(4) and state.head_of[5] == 4

    def test_star_topology_center_first(self):
        n = 5
        adjacency = np.zeros((n, n), dtype=bool)
        adjacency[0, 1:] = adjacency[1:, 0] = True
        priority = np.array([10.0, 1.0, 2.0, 3.0, 4.0])
        state = sequential_formation(adjacency, priority)
        assert state.cluster_count() == 1
        assert state.is_head(0)
        np.testing.assert_array_equal(np.sort(state.members_of(0)), [1, 2, 3, 4])

    def test_isolated_nodes_become_heads(self):
        adjacency = np.zeros((3, 3), dtype=bool)
        state = sequential_formation(adjacency, np.array([3.0, 2.0, 1.0]))
        assert state.cluster_count() == 3

    def test_everyone_assigned(self, unit_open, rng):
        positions = unit_open.uniform_positions(120, rng)
        adjacency = unit_open.adjacency(positions, 0.15)
        state = sequential_formation(
            adjacency, -rng.permutation(120).astype(float)
        )
        assert not np.any(state.roles == Role.UNASSIGNED)
        assert np.all(state.head_of >= 0)

    def test_member_joins_highest_priority_head(self):
        # Triangle 0-1-2 plus pendant 3 attached to 1 and 2.
        adjacency = np.zeros((4, 4), dtype=bool)
        for u, v in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]:
            adjacency[u, v] = adjacency[v, u] = True
        # Node 3 processed last, sees heads... 0 heads first, 1 and 2
        # join 0; 3 has no neighboring head (1,2 members) -> head.
        priority = np.array([4.0, 3.0, 2.0, 1.0])
        state = sequential_formation(adjacency, priority)
        assert state.is_head(0)
        assert state.is_head(3)

    def test_duplicate_priorities_rejected(self, small_adjacency):
        with pytest.raises(ValueError, match="unique"):
            sequential_formation(small_adjacency, np.ones(6))

    def test_priority_shape_mismatch(self, small_adjacency):
        with pytest.raises(ValueError):
            sequential_formation(small_adjacency, np.arange(4, dtype=float))
