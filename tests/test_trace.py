"""Tests for mobility trace recording and replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import (
    ConstantVelocityModel,
    MobilityTrace,
    TraceRecorder,
    TraceReplayModel,
)
from repro.spatial import Boundary, SquareRegion


@pytest.fixture
def recorded(unit_open_region=None):
    region = SquareRegion(1.0, Boundary.OPEN)
    recorder = TraceRecorder(ConstantVelocityModel(0.05))
    recorder.reset(20, region, 42)
    for _ in range(10):
        recorder.advance(0.1)
    return recorder, region


class TestMobilityTrace:
    def test_append_and_length(self):
        trace = MobilityTrace()
        trace.append(0.0, np.zeros((3, 2)))
        trace.append(1.0, np.ones((3, 2)))
        assert len(trace) == 2
        assert trace.n_nodes == 3

    def test_rejects_time_regression(self):
        trace = MobilityTrace()
        trace.append(1.0, np.zeros((2, 2)))
        with pytest.raises(ValueError):
            trace.append(0.5, np.ones((2, 2)))

    def test_frames_are_copies(self):
        trace = MobilityTrace()
        frame = np.zeros((2, 2))
        trace.append(0.0, frame)
        frame[0, 0] = 99.0
        assert trace.frames[0][0, 0] == 0.0

    def test_empty_trace_errors(self):
        trace = MobilityTrace()
        with pytest.raises(ValueError):
            trace.positions_at(0.0)
        with pytest.raises(ValueError):
            _ = trace.n_nodes

    def test_interpolation_midpoint(self):
        trace = MobilityTrace()
        trace.append(0.0, np.array([[0.0, 0.0]]))
        trace.append(1.0, np.array([[1.0, 2.0]]))
        np.testing.assert_allclose(trace.positions_at(0.5), [[0.5, 1.0]])

    def test_clamping_outside_span(self):
        trace = MobilityTrace()
        trace.append(1.0, np.array([[0.1, 0.1]]))
        trace.append(2.0, np.array([[0.9, 0.9]]))
        np.testing.assert_allclose(trace.positions_at(0.0), [[0.1, 0.1]])
        np.testing.assert_allclose(trace.positions_at(5.0), [[0.9, 0.9]])


class TestRecorder:
    def test_records_every_step(self, recorded):
        recorder, _ = recorded
        assert len(recorder.trace) == 11  # initial frame + 10 steps
        assert recorder.trace.times[0] == 0.0
        assert recorder.trace.times[-1] == pytest.approx(1.0)

    def test_recorder_positions_match_inner(self, recorded):
        recorder, _ = recorded
        np.testing.assert_allclose(
            recorder.positions, recorder.inner.positions
        )

    def test_reset_clears_trace(self, recorded):
        recorder, region = recorded
        recorder.reset(20, region, 1)
        assert len(recorder.trace) == 1


class TestReplay:
    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            TraceReplayModel(MobilityTrace())

    def test_replay_matches_recording(self, recorded):
        recorder, region = recorded
        replay = TraceReplayModel(recorder.trace)
        replay.reset(20, region, 0)
        np.testing.assert_allclose(replay.positions, recorder.trace.frames[0])
        for k in range(1, 11):
            replay_positions = replay.advance(0.1)
            np.testing.assert_allclose(
                replay_positions, recorder.trace.frames[k], atol=1e-9
            )

    def test_replay_interpolates_between_frames(self, recorded):
        recorder, region = recorded
        replay = TraceReplayModel(recorder.trace)
        replay.reset(20, region, 0)
        replay.advance(0.05)
        expected = 0.5 * (recorder.trace.frames[0] + recorder.trace.frames[1])
        np.testing.assert_allclose(replay.positions, expected, atol=1e-9)

    def test_wrong_node_count_rejected(self, recorded):
        recorder, region = recorded
        replay = TraceReplayModel(recorder.trace)
        with pytest.raises(ValueError):
            replay.reset(21, region, 0)
