"""Analytic-residual monitor: window mechanics and bound verification.

The load-bearing case is the hand-computed one: for constant-velocity
mobility with event-mode HELLO the paper's Eqn (4) lower bound
``f_hello >= 8 d v / (pi^2 r)`` is known in closed form, and the
measured beacon rate must sit at or above it.
"""

from __future__ import annotations

import math

import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.core.degree import expected_degree
from repro.core.overhead import hello_frequency
from repro.core.params import NetworkParameters
from repro.mobility import ConstantVelocityModel, EpochRandomWaypointModel
from repro.obs import CollectingTracer, ResidualMonitor
from repro.obs.residuals import MONITORED_CATEGORIES
from repro.routing import IntraClusterRoutingProtocol
from repro.sim import HelloProtocol, Simulation


def _hello_only_sim(params, seed=0, tracer=None, mobility=None):
    sim = Simulation(
        params,
        mobility or ConstantVelocityModel(params.velocity),
        seed=seed,
        tracer=tracer,
    )
    sim.attach(HelloProtocol(mode="event"))
    return sim


class TestMonitorValidation:
    def test_cluster_category_requires_maintenance(self):
        params = NetworkParameters.from_fractions(
            n_nodes=40, range_fraction=0.2, velocity_fraction=0.05
        )
        with pytest.raises(ValueError, match="head ratio"):
            ResidualMonitor(params, categories=("hello", "cluster"))

    def test_unknown_category_rejected(self):
        params = NetworkParameters.from_fractions(
            n_nodes=40, range_fraction=0.2, velocity_fraction=0.05
        )
        with pytest.raises(ValueError, match="no analytic bound"):
            ResidualMonitor(params, categories=("hello", "data"))

    def test_bad_window_and_rtol_rejected(self):
        params = NetworkParameters.from_fractions(
            n_nodes=40, range_fraction=0.2, velocity_fraction=0.05
        )
        with pytest.raises(ValueError, match="window"):
            ResidualMonitor(params, categories=("hello",), window=0.0)
        with pytest.raises(ValueError, match="rtol"):
            ResidualMonitor(params, categories=("hello",), rtol=-0.1)


class TestHelloBoundHandComputed:
    """Satellite check: measured HELLO rate vs the Eqn (4) closed form."""

    def test_cv_run_meets_closed_form_lower_bound(self, params):
        tracer = CollectingTracer()
        sim = _hello_only_sim(params, tracer=tracer)
        monitor = sim.attach(
            ResidualMonitor(
                params, categories=("hello",), window=1.0, rtol=0.05
            )
        )
        sim.run(duration=5.0, warmup=1.0)

        # The bound the monitor applied is exactly Eqn (4).
        degree = expected_degree(
            params.n_nodes, params.density, params.tx_range
        )
        by_hand = (
            8.0 * degree * params.velocity / (math.pi**2 * params.tx_range)
        )
        assert hello_frequency(params) == pytest.approx(by_hand)

        verdict = monitor.final_verdict["hello"]
        assert verdict["bound"] == pytest.approx(by_hand)
        # Event-mode HELLO beacons at least once per generated link, so
        # the measured rate must reach the analytic minimum.
        assert verdict["measured"] >= by_hand * 0.95
        assert verdict["ok"] is True
        assert monitor.ok

        finals = [
            r for r in tracer.of("residual") if r["kind"] == "final"
        ]
        assert len(finals) == 1
        assert finals[0]["category"] == "hello"
        assert finals[0]["measured"] == pytest.approx(verdict["measured"])


class TestWindowMechanics:
    def test_windows_cover_measurement_only(self, params):
        tracer = CollectingTracer()
        sim = _hello_only_sim(params, tracer=tracer)
        monitor = sim.attach(
            ResidualMonitor(params, categories=("hello",), window=1.0)
        )
        sim.run(duration=4.0, warmup=1.0)
        windows = [
            r for r in tracer.of("residual") if r["kind"] == "window"
        ]
        assert monitor.windows["hello"] == len(windows)
        assert 3 <= len(windows) <= 5
        for record in windows:
            # No window may start inside the warm-up phase.
            assert record["window_start"] >= 1.0 - 1e-9
            assert record["elapsed"] > 0.0
            assert record["residual"] == pytest.approx(
                record["measured"] - record["bound"]
            )

    def test_full_stack_monitors_all_three_categories(self, params):
        tracer = CollectingTracer()
        sim = Simulation(
            params,
            EpochRandomWaypointModel(params.velocity, epoch=1.0),
            seed=0,
            tracer=tracer,
        )
        sim.attach(HelloProtocol(mode="event"))
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        sim.attach(IntraClusterRoutingProtocol(maintenance))
        sim.attach(maintenance)
        monitor = sim.attach(
            ResidualMonitor(params, maintenance, window=1.0, rtol=0.05)
        )
        sim.run(duration=4.0, warmup=1.0)
        assert set(monitor.final_verdict) == set(MONITORED_CATEGORIES)
        for category in MONITORED_CATEGORIES:
            verdict = monitor.final_verdict[category]
            assert verdict["windows"] == monitor.windows[category]
            assert verdict["bound"] > 0.0
            assert verdict["measured"] >= 0.0
        # CLUSTER/ROUTE window events carry the measured head ratio.
        cluster_windows = [
            r
            for r in tracer.of("residual")
            if r["kind"] == "window" and r["category"] == "cluster"
        ]
        assert cluster_windows
        for record in cluster_windows:
            assert 0.0 < record["head_ratio"] <= 1.0
