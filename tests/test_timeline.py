"""Timeline export: Chrome trace-event JSON and collapsed profiles."""

from __future__ import annotations

import cProfile
import json

import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.mobility import EpochRandomWaypointModel
from repro.obs import JsonlTracer, build_timeline, write_timeline
from repro.obs.timeline import profile_to_collapsed, write_collapsed_profile
from repro.sim import HelloProtocol, Simulation


@pytest.fixture
def trace_path(params, tmp_path):
    path = tmp_path / "run.jsonl"
    with JsonlTracer(path, step_every=5) as tracer:
        sim = Simulation(
            params,
            EpochRandomWaypointModel(params.velocity, epoch=1.0),
            seed=3,
            tracer=tracer,
        )
        sim.attach(HelloProtocol(mode="event"))
        sim.attach(ClusterMaintenanceProtocol(LowestIdClustering()))
        sim.run(duration=3.0, warmup=1.0)
    return path


class TestBuildTimeline:
    def test_valid_chrome_trace_shape(self, trace_path):
        timeline = build_timeline(trace_path)
        assert set(timeline) == {"traceEvents", "displayTimeUnit"}
        events = timeline["traceEvents"]
        assert events
        for event in events:
            assert "ph" in event and "name" in event
            if event["ph"] != "M":
                assert event["ts"] >= 0.0

    def test_spans_become_complete_slices(self, trace_path):
        events = build_timeline(trace_path)["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert slices
        for s in slices:
            assert s["dur"] >= 1.0  # zero-duration widened to minimum
            assert s["cat"] in ("run", "phase", "step", "handler")
            assert "span" in s["args"]
        # The span hierarchy maps to fixed tids: run above handlers.
        by_cat = {s["cat"]: s["tid"] for s in slices}
        assert by_cat["run"] < by_cat["handler"]

    def test_links_become_flow_pairs(self, trace_path):
        events = build_timeline(trace_path)["traceEvents"]
        flows_s = [e for e in events if e["ph"] == "s"]
        flows_f = [e for e in events if e["ph"] == "f"]
        assert len(flows_s) == len(flows_f)
        assert {e["id"] for e in flows_s} == {e["id"] for e in flows_f}

    def test_head_changes_become_instants(self, trace_path):
        events = build_timeline(trace_path)["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert instants
        assert all(e["cat"] == "head_change" for e in instants)

    def test_metadata_names_process(self, trace_path):
        events = build_timeline(trace_path)["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names
        assert "thread_name" in names

    def test_empty_trace_raises(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            build_timeline(empty)

    def test_write_timeline_is_loadable_json(self, trace_path, tmp_path):
        out = tmp_path / "timeline.json"
        count = write_timeline(trace_path, out)
        loaded = json.loads(out.read_text())
        assert len(loaded["traceEvents"]) == count

    def test_unmatched_span_end_skipped(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        records = [
            {"schema": 1, "event": "run_begin", "t": 0.0, "sim": 0,
             "n_nodes": 4},
            {"schema": 1, "event": "span_end", "t": 1.0, "sim": 0,
             "span": 999, "name": "lost", "kind": "handler",
             "duration": 1.0},
        ]
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )
        events = build_timeline(path)["traceEvents"]
        assert not [e for e in events if e["ph"] == "X"]


class TestCollapsedProfile:
    def _profile(self):
        def leaf():
            return sum(range(2000))

        def trunk():
            return [leaf() for _ in range(50)]

        profile = cProfile.Profile()
        profile.enable()
        trunk()
        profile.disable()
        return profile

    def test_collapsed_lines_are_semicolon_stacks(self):
        lines = profile_to_collapsed(self._profile())
        assert lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack
            assert int(value) > 0
        joined = "\n".join(lines)
        assert "leaf" in joined
        assert "trunk" in joined

    def test_caller_edges_present(self):
        lines = profile_to_collapsed(self._profile())
        assert any(
            ";" in line.rpartition(" ")[0] and "leaf" in line
            for line in lines
        )

    def test_output_is_deterministic_order(self):
        lines = profile_to_collapsed(self._profile())
        stacks = [line.rpartition(" ")[0] for line in lines]
        assert stacks == sorted(stacks)

    def test_write_collapsed_profile(self, tmp_path):
        out = tmp_path / "profile.collapsed"
        count = write_collapsed_profile(self._profile(), out)
        written = out.read_text().strip().splitlines()
        assert len(written) == count
