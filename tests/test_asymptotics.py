"""Tests for the Section 6 Θ-notation module (repro.core.asymptotics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.asymptotics import (
    PAPER_CLAIMED_EXPONENTS,
    ScalingResult,
    asymptotic_exponent_table,
    fit_power_law,
    measure_exponent,
)


class TestPowerLawFit:
    def test_exact_power_law(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        exponent, r2 = fit_power_law(x, 3.0 * x**2.5)
        assert exponent == pytest.approx(2.5)
        assert r2 == pytest.approx(1.0)

    def test_constant_series(self):
        x = np.array([1.0, 2.0, 4.0])
        exponent, _ = fit_power_law(x, np.full(3, 7.0))
        assert exponent == pytest.approx(0.0, abs=1e-12)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0, 3.0]), np.array([1.0, -1.0, 2.0]))

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0, 3.0]), np.array([1.0, 2.0]))


class TestMeasuredExponents:
    """The reproduction of the paper's Section 6 claims."""

    @pytest.mark.parametrize("quantity", list(PAPER_CLAIMED_EXPONENTS))
    @pytest.mark.parametrize("parameter", ["r", "rho", "v"])
    def test_matches_paper_claim(self, quantity, parameter):
        claimed = PAPER_CLAIMED_EXPONENTS[quantity][parameter]
        result = measure_exponent(quantity, parameter, num=6)
        assert isinstance(result, ScalingResult)
        assert result.exponent == pytest.approx(claimed, abs=0.12)

    @pytest.mark.parametrize("quantity", list(PAPER_CLAIMED_EXPONENTS))
    def test_theta_one_in_network_size(self, quantity):
        result = measure_exponent(quantity, "N", num=5)
        assert result.exponent == pytest.approx(0.0, abs=0.05)

    def test_velocity_fits_are_exact(self):
        # Every overhead is exactly linear in v.
        result = measure_exponent("hello", "v", num=5)
        assert result.exponent == pytest.approx(1.0, abs=1e-9)
        assert result.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_unknown_quantity_rejected(self):
        with pytest.raises(ValueError):
            measure_exponent("bogus", "r")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            measure_exponent("hello", "bogus")


def test_full_table_structure():
    table = asymptotic_exponent_table(num=4)
    assert set(table) == set(PAPER_CLAIMED_EXPONENTS)
    for quantity, claims in PAPER_CLAIMED_EXPONENTS.items():
        assert set(table[quantity]) == set(claims)
        for parameter, result in table[quantity].items():
            assert result.quantity == quantity
            assert result.parameter == parameter
            assert len(result.grid) == 4
            assert len(result.values) == 4


def test_route_dominates_total_overhead():
    """Section 6: 'ROUTE message overhead constitutes the main control
    overhead' (full-table reading)."""
    from repro.core.lid_analysis import lid_head_probability
    from repro.core.overhead import (
        cluster_overhead,
        hello_overhead,
        route_overhead,
    )
    from repro.core.params import NetworkParameters

    params = NetworkParameters.from_fractions(
        n_nodes=400, range_fraction=0.15, velocity_fraction=0.05
    )
    p_head = float(
        lid_head_probability(params.n_nodes, params.density, params.tx_range)
    )
    route = route_overhead(params, p_head, full_table=True)
    assert route > hello_overhead(params)
    assert route > cluster_overhead(params, p_head)
