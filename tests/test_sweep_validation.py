"""Tests for the sweep harness and the validation verdicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    SweepResult,
    measure_point,
    run_sweep,
    validate_sweep,
)
from repro.analysis.sweep import SweepPoint
from repro.core.params import NetworkParameters


@pytest.fixture(scope="module")
def small_point():
    """One cheap measured point shared across tests."""
    params = NetworkParameters.from_fractions(
        n_nodes=60, range_fraction=0.2, velocity_fraction=0.05
    )
    return measure_point(
        params, 0.2, seeds=1, duration=4.0, warmup=0.5
    )


class TestMeasurePoint:
    def test_structure(self, small_point):
        assert isinstance(small_point, SweepPoint)
        assert set(small_point.measured) == {"f_hello", "f_cluster", "f_route"}
        assert set(small_point.predicted) == {"f_hello", "f_cluster", "f_route"}
        assert 0.0 < small_point.measured_head_ratio <= 1.0
        assert small_point.seeds == 1

    def test_frequencies_positive(self, small_point):
        for value in small_point.measured.values():
            assert value > 0.0
        for value in small_point.predicted.values():
            assert value > 0.0

    def test_prediction_uses_measured_p(self, small_point):
        from repro.core import overhead as oh

        expected = oh.cluster_frequency(
            small_point.params, small_point.measured_head_ratio, "consistent"
        )
        assert small_point.predicted["f_cluster"] == pytest.approx(expected)

    def test_rejects_zero_seeds(self):
        params = NetworkParameters.from_fractions(
            n_nodes=20, range_fraction=0.2, velocity_fraction=0.05
        )
        with pytest.raises(ValueError):
            measure_point(params, 0.2, seeds=0)


class TestRunSweep:
    def test_velocity_sweep_structure(self):
        base = NetworkParameters.from_fractions(
            n_nodes=40, range_fraction=0.25, velocity_fraction=0.05
        )
        result = run_sweep(
            "velocity",
            base,
            [0.02, 0.06],
            seeds=1,
            duration=3.0,
            warmup=0.5,
        )
        assert isinstance(result, SweepResult)
        assert result.values() == [0.02, 0.06]
        assert len(result.measured_series("f_hello")) == 2
        # f_hello grows with velocity (both measured and predicted).
        assert result.predicted_series("f_hello")[1] > result.predicted_series(
            "f_hello"
        )[0]

    def test_density_sweep_changes_area(self):
        base = NetworkParameters(
            n_nodes=40, density=40.0, tx_range=0.2, velocity=0.05
        )
        result = run_sweep(
            "density", base, [40.0, 90.0], seeds=1, duration=2.0, warmup=0.5
        )
        sides = [point.params.side for point in result.points]
        assert sides[0] > sides[1]
        assert all(point.params.n_nodes == 40 for point in result.points)

    def test_unknown_parameter_rejected(self):
        base = NetworkParameters.from_fractions(
            n_nodes=20, range_fraction=0.2, velocity_fraction=0.05
        )
        with pytest.raises(ValueError, match="parameter"):
            run_sweep("speed_of_light", base, [1.0])


class TestValidateSweep:
    def _synthetic_result(self, measured, predicted):
        result = SweepResult(parameter="tx_range")
        base = NetworkParameters.from_fractions(
            n_nodes=20, range_fraction=0.2, velocity_fraction=0.05
        )
        for i, (m, p) in enumerate(zip(measured, predicted)):
            result.points.append(
                SweepPoint(
                    parameter_value=float(i),
                    params=base,
                    measured_head_ratio=0.3,
                    measured={"f_hello": m, "f_cluster": m, "f_route": m},
                    predicted={"f_hello": p, "f_cluster": p, "f_route": p},
                    seeds=1,
                )
            )
        return result

    def test_perfect_agreement(self):
        result = self._synthetic_result([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        verdict = validate_sweep(result)
        assert verdict.all_agree()
        for curve in verdict.curves.values():
            assert curve.mean_relative_error == 0.0
            assert curve.correlation == pytest.approx(1.0)

    def test_constant_offset_still_agrees_on_shape(self):
        result = self._synthetic_result([2.0, 4.0, 6.0], [1.0, 2.0, 3.0])
        verdict = validate_sweep(result)
        assert verdict.all_agree(max_mean_error=1.5)
        for curve in verdict.curves.values():
            assert curve.mean_relative_error == pytest.approx(1.0)
            assert curve.correlation == pytest.approx(1.0)

    def test_opposite_trend_fails(self):
        result = self._synthetic_result([3.0, 2.0, 1.0], [1.0, 2.0, 3.0])
        verdict = validate_sweep(result)
        assert not verdict.all_agree()
        assert not verdict.curves["f_hello"].same_trend

    def test_real_sweep_agrees(self):
        """End-to-end: a small real sweep passes shape validation."""
        base = NetworkParameters.from_fractions(
            n_nodes=60, range_fraction=0.12, velocity_fraction=0.05
        )
        result = run_sweep(
            "tx_range",
            base,
            [0.10, 0.18, 0.28],
            seeds=2,
            duration=6.0,
            warmup=1.0,
        )
        verdict = validate_sweep(result)
        assert verdict.curves["f_hello"].agrees(max_mean_error=0.6)
        assert verdict.curves["f_cluster"].agrees(max_mean_error=0.8)
        # ROUTE is a known lower bound: allow larger magnitude error but
        # require the shape to track.
        assert verdict.curves["f_route"].same_trend
        assert verdict.curves["f_route"].correlation > 0.9
