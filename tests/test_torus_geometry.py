"""Tests for the torus connectivity/degree variant.

These quantify the window-vs-torus gap: the simulator wraps (as does
the paper's own RWP variant), so its degree follows the torus metric,
exceeding Claim 1's bounded-window degree by the boundary factor.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degree import expected_degree, expected_torus_degree
from repro.core.geometry import torus_connectivity_probability
from repro.spatial import Boundary, SquareRegion


class TestTorusConnectivity:
    def test_small_radius_is_disk_area(self):
        assert torus_connectivity_probability(0.3) == pytest.approx(
            math.pi * 0.09
        )

    def test_branch_continuity_at_half(self):
        below = torus_connectivity_probability(0.5 - 1e-9)
        above = torus_connectivity_probability(0.5 + 1e-9)
        assert below == pytest.approx(above, abs=1e-6)

    def test_full_coverage(self):
        assert torus_connectivity_probability(math.sqrt(0.5)) == pytest.approx(
            1.0, abs=1e-9
        )
        assert torus_connectivity_probability(1.0) == 1.0

    def test_branch_continuity_at_diagonal(self):
        just_below = torus_connectivity_probability(math.sqrt(0.5) - 1e-9)
        assert just_below == pytest.approx(1.0, abs=1e-6)

    def test_side_scaling(self):
        assert torus_connectivity_probability(3.0, side=10.0) == pytest.approx(
            torus_connectivity_probability(0.3)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            torus_connectivity_probability(0.1, side=0.0)
        with pytest.raises(ValueError):
            torus_connectivity_probability(-0.1)

    def test_matches_monte_carlo_segment_branch(self):
        region = SquareRegion(1.0, Boundary.TORUS)
        rng = np.random.default_rng(0)
        r = 0.6  # in the segment branch
        p = rng.uniform(size=(200_000, 2))
        q = rng.uniform(size=(200_000, 2))
        diff = p - q
        diff -= np.round(diff)
        dist = np.hypot(diff[:, 0], diff[:, 1])
        empirical = float(np.mean(dist <= r))
        assert torus_connectivity_probability(r) == pytest.approx(
            empirical, abs=0.005
        )


class TestTorusDegree:
    def test_exceeds_window_degree(self):
        for r in (0.05, 0.15, 0.3):
            window = float(expected_degree(400, 400.0, r))
            torus = expected_torus_degree(400, 400.0, r)
            assert torus > window

    def test_matches_simulation_degree(self):
        region = SquareRegion(1.0, Boundary.TORUS)
        n, r = 300, 0.15
        degrees = []
        for seed in range(8):
            positions = region.uniform_positions(n, seed)
            degrees.append(region.adjacency(positions, r).sum(axis=1).mean())
        assert expected_torus_degree(n, float(n), r) == pytest.approx(
            float(np.mean(degrees)), rel=0.03
        )

    def test_explains_hello_residual(self):
        """Replacing Claim 1's window degree with the torus degree
        removes most of the systematic f_hello underestimate."""
        from repro.core.linkdynamics import bcv_link_generation_rate
        from repro.core.params import NetworkParameters
        from repro.mobility import EpochRandomWaypointModel
        from repro.sim import HelloProtocol, Simulation

        params = NetworkParameters.from_fractions(
            n_nodes=200, range_fraction=0.15, velocity_fraction=0.05
        )
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=4
        )
        sim.attach(HelloProtocol("event"))
        stats = sim.run(duration=15.0, warmup=2.0)
        measured = stats.per_node_frequency("hello")
        torus_degree = expected_torus_degree(
            params.n_nodes, params.density, params.tx_range
        )
        predicted = bcv_link_generation_rate(
            torus_degree, params.tx_range, params.velocity
        )
        assert measured == pytest.approx(predicted, rel=0.08)


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.5))
def test_torus_probability_bounds_property(r):
    value = torus_connectivity_probability(r)
    assert 0.0 <= value <= 1.0
    # Dominates the bounded-square CDF (wrapping only shortens paths).
    from repro.core.geometry import link_distance_cdf

    assert value >= link_distance_cdf(r) - 1e-12
