"""Unit tests for the observability subsystem (`repro.obs`)."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    CollectingTracer,
    JsonlTracer,
    MetricsRegistry,
    NULL_TRACER,
    PhaseTimer,
    TRACE_SCHEMA_VERSION,
    current,
    observe,
    read_trace,
    summarize_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("c").inc(-1.0)


class TestGauge:
    def test_set_and_shift(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(-3.0)
        assert gauge.value == 7.0


class TestHistogram:
    def test_bucketing_with_overflow(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.sum == 7.0
        assert histogram.mean() == pytest.approx(7.0 / 3.0)

    def test_empty_mean_is_nan(self):
        assert math.isnan(Histogram("h").mean())

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_quantile_of_empty_is_nan(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        assert math.isnan(histogram.quantile(0.5))
        summary = histogram.summary()
        assert summary["count"] == 0
        assert math.isnan(summary["p50"])
        assert math.isnan(summary["min"])

    def test_quantile_single_sample_is_exact_for_all_q(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        histogram.observe(1.7)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert histogram.quantile(q) == pytest.approx(1.7)

    def test_quantile_interpolates_within_buckets(self):
        histogram = Histogram("h", bounds=(10.0, 20.0, 30.0))
        for value in (2.0, 12.0, 14.0, 16.0, 18.0, 25.0):
            histogram.observe(value)
        # Estimates stay within the observed range and are monotone.
        previous = -math.inf
        for q in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
            estimate = histogram.quantile(q)
            assert 2.0 <= estimate <= 25.0
            assert estimate >= previous
            previous = estimate
        assert histogram.quantile(1.0) == pytest.approx(25.0)
        assert histogram.quantile(0.0) == pytest.approx(2.0)

    def test_quantile_rejects_out_of_range_q(self):
        histogram = Histogram("h")
        with pytest.raises(ValueError, match="q"):
            histogram.quantile(1.5)
        with pytest.raises(ValueError, match="q"):
            histogram.quantile(-0.1)

    def test_summary_tracks_min_max_mean(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.5
        assert summary["max"] == 5.0
        assert summary["mean"] == pytest.approx(7.0 / 3.0)


class TestMetricsRegistry:
    def test_same_name_and_labels_share_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("messages_total", category="hello")
        b = registry.counter("messages_total", category="hello")
        assert a is b

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("m", x="1", y="2")
        b = registry.counter("m", y="2", x="1")
        assert a is b

    def test_different_labels_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("m", category="hello")
        b = registry.counter("m", category="route")
        assert a is not b

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m")

    def test_to_dict_roundtrips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("msgs", category="hello").inc(3)
        registry.gauge("clusters").set(7)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        payload = json.loads(json.dumps(registry.to_dict()))
        assert payload["counters"] == [
            {"name": "msgs", "labels": {"category": "hello"}, "value": 3}
        ]
        assert payload["gauges"][0]["value"] == 7
        assert payload["histograms"][0]["bucket_counts"] == [1, 0]


class TestPhaseTimer:
    def test_accumulates_per_phase(self):
        timer = PhaseTimer()
        timer.add("mobility", 0.25)
        timer.add("mobility", 0.75)
        timer.add("adjacency", 1.0)
        assert timer.phases == ["mobility", "adjacency"]
        assert timer.seconds("mobility") == 1.0
        assert timer.seconds("unseen") == 0.0
        report = timer.report()
        assert report.total_seconds == 2.0
        by_name = {p.phase: p for p in report.phases}
        assert by_name["mobility"].calls == 2
        assert by_name["mobility"].mean_seconds == 0.5

    def test_phase_context_manager_times_body(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            pass
        assert timer.seconds("work") >= 0.0
        assert timer.report().phases[0].calls == 1

    def test_reset(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.reset()
        assert timer.phases == []

    def test_report_render_and_dict(self):
        timer = PhaseTimer()
        timer.add("adjacency", 2.0, calls=4)
        timer.add("mobility", 1.0, calls=4)
        rendered = timer.report().render()
        # Slowest phase first.
        assert rendered.index("adjacency") < rendered.index("mobility")
        payload = timer.report().to_dict()
        assert payload["total_seconds"] == 3.0
        assert {p["phase"] for p in payload["phases"]} == {
            "adjacency",
            "mobility",
        }


class TestTracers:
    def test_null_tracer_is_disabled_noop(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("step", 0.0, anything=1)  # must not raise
        NULL_TRACER.close()

    def test_collecting_tracer(self):
        tracer = CollectingTracer()
        tracer.emit("link_up", 1.0, u=0, v=1)
        tracer.emit("link_down", 2.0, u=0, v=1)
        assert tracer.of("link_up") == [
            {"event": "link_up", "t": 1.0, "u": 0, "v": 1}
        ]

    def test_jsonl_tracer_writes_versioned_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.emit("msg_tx", 1.5, category="hello", messages=2, bits=96.0)
        records = list(read_trace(path))
        assert records == [
            {
                "schema": TRACE_SCHEMA_VERSION,
                "event": "msg_tx",
                "t": 1.5,
                "category": "hello",
                "messages": 2,
                "bits": 96.0,
            }
        ]

    def test_jsonl_tracer_coerces_numpy_scalars(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.emit("link_up", np.float64(1.0), u=np.int64(3), v=4)
        (record,) = read_trace(path)
        assert record["u"] == 3

    def test_event_filtering(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path, events={"msg_tx"}) as tracer:
            tracer.emit("step", 0.1)
            tracer.emit("msg_tx", 0.1, category="hello", messages=1, bits=1.0)
        records = list(read_trace(path))
        assert [r["event"] for r in records] == ["msg_tx"]
        assert tracer.emitted == 1 and tracer.suppressed == 1

    def test_unknown_event_filter_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace events"):
            JsonlTracer(tmp_path / "t.jsonl", events={"bogus"})

    def test_step_sampling(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path, step_every=3) as tracer:
            for index in range(7):
                tracer.emit("step", float(index))
        steps = [r["t"] for r in read_trace(path)]
        assert steps == [0.0, 3.0, 6.0]

    def test_step_sampling_leaves_other_events_alone(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTracer(path, step_every=10) as tracer:
            for index in range(5):
                tracer.emit("link_up", float(index), u=0, v=1)
        assert len(list(read_trace(path))) == 5

    def test_rejects_bad_step_every(self, tmp_path):
        with pytest.raises(ValueError, match="step_every"):
            JsonlTracer(tmp_path / "t.jsonl", step_every=0)


class TestReadTrace:
    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            list(read_trace(path))

    def test_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": 99, "event": "step", "t": 0}\n')
        with pytest.raises(ValueError, match="schema"):
            list(read_trace(path))

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"schema": 1, "event": "step", "t": 0}\n\n')
        assert len(list(read_trace(path))) == 1

    def test_truncated_final_line_is_skipped_with_warning(
        self, tmp_path, caplog
    ):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"schema": 1, "event": "step", "t": 0}\n'
            '{"schema": 1, "event": "st'  # writer killed mid-record
        )
        with caplog.at_level("WARNING", logger="repro.obs.summary"):
            records = list(read_trace(path))
        assert len(records) == 1
        assert "truncated final record" in caplog.text

    def test_newline_terminated_bad_line_still_raises(self, tmp_path):
        # A malformed line the writer *did* terminate is corruption,
        # not truncation, even when it is the last line.
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"schema": 1, "event": "step", "t": 0}\n'
            '{"schema": 1, "event": "st\n'
        )
        with pytest.raises(ValueError, match="not valid JSON"):
            list(read_trace(path))

    def test_empty_trace_summary_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            summarize_trace(path)


class TestSummarizeTrace:
    def _write(self, path, records):
        path.write_text(
            "".join(json.dumps({"schema": 1, **r}) + "\n" for r in records)
        )

    def test_aggregates_msg_tx_per_category(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(
            path,
            [
                {"event": "msg_tx", "t": 1.0, "sim": 0, "category": "hello",
                 "messages": 2, "bits": 64.0},
                {"event": "msg_tx", "t": 2.0, "sim": 0, "category": "hello",
                 "messages": 3, "bits": 96.0},
                {"event": "msg_tx", "t": 2.0, "sim": 0, "category": "route",
                 "messages": 1, "bits": 500.0},
            ],
        )
        summary = summarize_trace(path)
        assert summary.records == 3
        assert summary.messages == {"hello": 5, "route": 1}
        assert summary.bits == {"hello": 160.0, "route": 500.0}
        assert summary.reconciles()  # no run_end => nothing to dispute

    def test_reconciliation_failure_detected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(
            path,
            [
                {"event": "run_begin", "t": 0.0, "sim": 0, "n_nodes": 10},
                {"event": "msg_tx", "t": 1.0, "sim": 0, "category": "hello",
                 "messages": 2, "bits": 64.0},
                {"event": "run_end", "t": 5.0, "sim": 0, "measured_time": 5.0,
                 "totals": {"hello": {"messages": 3, "bits": 64.0}}},
            ],
        )
        summary = summarize_trace(path)
        assert not summary.reconciles()
        assert any("traced 2" in p for p in summary.mismatches())
        assert "RECONCILIATION FAILED" in summary.render()

    def test_frequencies_from_run_metadata(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(
            path,
            [
                {"event": "run_begin", "t": 0.0, "sim": 2, "n_nodes": 10},
                {"event": "msg_tx", "t": 1.0, "sim": 2, "category": "hello",
                 "messages": 50, "bits": 0.0},
                {"event": "run_end", "t": 5.0, "sim": 2, "measured_time": 5.0,
                 "totals": {"hello": {"messages": 50, "bits": 0.0}}},
            ],
        )
        summary = summarize_trace(path)
        run = summary.runs[2]
        assert run.frequencies() == {"hello": 1.0}
        payload = summary.to_dict()
        assert payload["reconciles"] is True
        assert payload["runs"][0]["frequencies"] == {"hello": 1.0}


class TestObsContext:
    def test_default_context_is_null(self):
        context = current()
        assert context.tracer is NULL_TRACER
        assert context.registry is None and context.timer is None

    def test_observe_nests_and_restores(self):
        tracer = CollectingTracer()
        timer = PhaseTimer()
        with observe(tracer=tracer):
            assert current().tracer is tracer
            with observe(timer=timer):
                # Inner scope inherits the tracer, adds the timer.
                assert current().tracer is tracer
                assert current().timer is timer
            assert current().timer is None
        assert current().tracer is NULL_TRACER

    def test_observe_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with observe(tracer=CollectingTracer()):
                raise RuntimeError("boom")
        assert current().tracer is NULL_TRACER


class TestLogging:
    def test_configure_logging_is_idempotent(self):
        import logging

        from repro.obs import configure_logging

        configure_logging(verbosity=1)
        configure_logging(verbosity=1)
        root = logging.getLogger("repro")
        marked = [
            h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1
        assert root.level == logging.INFO
        configure_logging(level="debug")
        assert root.level == logging.DEBUG

    def test_unknown_level_rejected(self):
        from repro.obs import configure_logging

        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="chatty")
