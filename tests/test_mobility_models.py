"""Tests for the survey mobility models (RWP, RW, RD, GM, Manhattan, RPGM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import (
    GaussMarkovModel,
    ManhattanModel,
    RandomDirectionModel,
    RandomWalkModel,
    RandomWaypointModel,
    ReferencePointGroupModel,
)
from repro.spatial import Boundary, SquareRegion


@pytest.fixture
def reflect_region() -> SquareRegion:
    return SquareRegion(1.0, Boundary.REFLECT)


@pytest.fixture
def open_region() -> SquareRegion:
    return SquareRegion(1.0, Boundary.OPEN)


def _run(model, region, n=60, steps=40, dt=0.1, seed=0):
    model.reset(n, region, seed)
    for _ in range(steps):
        positions = model.advance(dt)
    return np.asarray(positions)


class TestRandomWaypoint:
    def test_rejects_zero_min_speed(self):
        with pytest.raises(ValueError):
            RandomWaypointModel((0.0, 1.0))

    def test_rejects_bad_pause(self):
        with pytest.raises(ValueError):
            RandomWaypointModel((0.1, 0.2), (-1.0, 0.0))

    def test_stays_inside(self, open_region):
        positions = _run(RandomWaypointModel((0.05, 0.2)), open_region)
        assert np.all(open_region.contains(positions))

    def test_reaches_waypoints_exactly(self, open_region):
        model = RandomWaypointModel((0.5, 0.5))
        model.reset(1, open_region, 1)
        target = model._targets[0].copy()
        # Travel long enough to certainly arrive and re-target.
        model.advance(np.linalg.norm(target - model.positions[0]) / 0.5 + 1e-9)
        assert not np.array_equal(model._targets[0], target)

    def test_pause_halts_motion(self, open_region):
        model = RandomWaypointModel((0.5, 0.5), pause_range=(100.0, 100.0))
        model.reset(1, open_region, 2)
        # Arrive at the first waypoint, entering the long pause.
        distance = np.linalg.norm(model._targets[0] - model.positions[0])
        model.advance(distance / 0.5 + 0.01)
        frozen = np.asarray(model.positions).copy()
        model.advance(5.0)
        np.testing.assert_array_equal(model.positions, frozen)

    def test_center_bias_of_stationary_distribution(self, open_region):
        # The well-known RWP density pathology: more mass near the center.
        model = RandomWaypointModel((0.2, 0.4))
        model.reset(3000, open_region, 3)
        for _ in range(60):
            model.advance(0.5)
        positions = np.asarray(model.positions)
        center_distance = np.linalg.norm(positions - 0.5, axis=1)
        # Under uniformity E[dist to center] ~ 0.3826; RWP is clearly lower.
        assert center_distance.mean() < 0.36


class TestRandomWalk:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            RandomWalkModel((0.1, 0.2), interval=0.0)

    def test_stays_inside_reflect(self, reflect_region):
        positions = _run(RandomWalkModel((0.1, 0.5)), reflect_region)
        assert np.all(reflect_region.contains(positions))

    def test_headings_redrawn_after_interval(self, reflect_region):
        model = RandomWalkModel((0.1, 0.1), interval=0.5)
        model.reset(50, reflect_region, 4)
        before = model._velocities.copy()
        model.advance(1.0)
        assert not np.allclose(before, model._velocities)

    def test_speed_within_bounds(self, reflect_region):
        model = RandomWalkModel((0.1, 0.3))
        model.reset(200, reflect_region, 5)
        model.advance(0.7)
        speeds = np.hypot(model._velocities[:, 0], model._velocities[:, 1])
        assert np.all(speeds >= 0.1 - 1e-9)
        assert np.all(speeds <= 0.3 + 1e-9)


class TestRandomDirection:
    def test_rejects_zero_speed(self):
        with pytest.raises(ValueError):
            RandomDirectionModel((0.0, 0.1))

    def test_stays_inside(self, open_region):
        positions = _run(RandomDirectionModel((0.1, 0.4), pause=0.1), open_region)
        assert np.all(open_region.contains(positions))

    def test_travels_to_border_then_turns(self, open_region):
        model = RandomDirectionModel((0.5, 0.5))
        model.reset(1, open_region, 6)
        heading_before = model._velocities[0].copy()
        # With speed 0.5 in a unit square any straight leg ends within
        # ~3s, and with pause=0 the node turns at the border within the
        # same advance call — so the heading must have changed.
        model.advance(5.0)
        assert not np.allclose(model._velocities[0], heading_before)

    def test_pause_at_border(self, open_region):
        model = RandomDirectionModel((0.5, 0.5), pause=10.0)
        model.reset(1, open_region, 7)
        for _ in range(200):
            model.advance(0.05)
            if model._pause_left[0] > 0.0:
                break
        else:
            pytest.fail("node never reached the border")
        frozen = np.asarray(model.positions).copy()
        model.advance(1.0)
        np.testing.assert_array_equal(model.positions, frozen)


class TestGaussMarkov:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GaussMarkovModel(0.0)
        with pytest.raises(ValueError):
            GaussMarkovModel(0.1, alpha=1.5)
        with pytest.raises(ValueError):
            GaussMarkovModel(0.1, update_interval=0.0)

    def test_stays_inside(self, reflect_region):
        positions = _run(GaussMarkovModel(0.1), reflect_region)
        assert np.all(reflect_region.contains(positions))

    def test_alpha_one_is_constant_velocity(self):
        # On a torus there are no reflections, so alpha=1 freezes the
        # speed/heading processes entirely (degenerates to CV).
        region = SquareRegion(1.0, Boundary.TORUS)
        model = GaussMarkovModel(0.2, alpha=1.0, speed_sigma=0.0)
        model.reset(30, region, 8)
        headings = model._headings.copy()
        speeds = model._speeds.copy()
        model.advance(3.0)
        np.testing.assert_allclose(model._speeds, speeds)
        np.testing.assert_allclose(model._headings, headings)

    def test_speed_reverts_to_mean(self, reflect_region):
        model = GaussMarkovModel(0.3, alpha=0.5, speed_sigma=0.05)
        model.reset(2000, reflect_region, 9)
        for _ in range(50):
            model.advance(1.0)
        assert np.mean(model._speeds) == pytest.approx(0.3, abs=0.02)

    def test_speeds_never_negative(self, reflect_region):
        model = GaussMarkovModel(0.05, alpha=0.2, speed_sigma=0.2)
        model.reset(500, reflect_region, 10)
        for _ in range(30):
            model.advance(1.0)
            assert np.all(model._speeds >= 0.0)


class TestManhattan:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ManhattanModel((0.0, 0.1))
        with pytest.raises(ValueError):
            ManhattanModel((0.1, 0.2), blocks=0)
        with pytest.raises(ValueError):
            ManhattanModel((0.1, 0.2), turn_probability=1.5)

    def test_nodes_stay_on_streets(self, open_region):
        model = ManhattanModel((0.1, 0.3), blocks=4)
        model.reset(80, open_region, 11)
        spacing = model.street_spacing
        for _ in range(40):
            positions = np.asarray(model.advance(0.1))
            offsets = positions / spacing
            on_street = np.isclose(offsets, np.round(offsets), atol=1e-6)
            assert np.all(on_street.any(axis=1)), "node left the street grid"

    def test_stays_inside(self, open_region):
        positions = _run(ManhattanModel((0.1, 0.3), blocks=5), open_region)
        assert np.all(open_region.contains(positions))

    def test_turns_happen(self, open_region):
        model = ManhattanModel((0.2, 0.2), blocks=4, turn_probability=1.0)
        model.reset(50, open_region, 12)
        directions_before = model._direction.copy()
        # Crossing at least one intersection forces a turn decision.
        model.advance(2.0)
        assert not np.array_equal(directions_before, model._direction)


class TestReferencePointGroup:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReferencePointGroupModel(0, 0.1, 0.1)
        with pytest.raises(ValueError):
            ReferencePointGroupModel(3, 0.0, 0.1)

    def test_group_assignment_balanced(self, unit_torus):
        model = ReferencePointGroupModel(4, 0.1, 0.05)
        model.reset(102, unit_torus, 13)
        counts = np.bincount(model.group_assignment, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_members_stay_near_centers(self, unit_torus):
        model = ReferencePointGroupModel(5, 0.08, 0.05)
        model.reset(100, unit_torus, 14)
        for _ in range(30):
            model.advance(0.2)
        centers = np.asarray(model.center_model.positions)
        positions = np.asarray(model.positions)
        for node in range(100):
            center = centers[model.group_assignment[node]]
            distance = unit_torus.distance(positions[node], center)
            assert distance <= model.group_radius + 1e-9

    def test_groups_are_spatially_coherent(self, unit_torus):
        model = ReferencePointGroupModel(4, 0.05, 0.05)
        model.reset(80, unit_torus, 15)
        model.advance(1.0)
        positions = np.asarray(model.positions)
        # Within-group spread is far below the region scale.
        for group in range(4):
            members = positions[model.group_assignment == group]
            center = np.asarray(model.center_model.positions)[group]
            spreads = [unit_torus.distance(m, center) for m in members]
            assert max(spreads) <= 0.05 + 1e-9
