"""Fault-injection tests: plans, degradation paths, chaos determinism.

The contract under test (DESIGN.md / repro.faults): fault plans are a
pure function of ``(config, n_nodes, horizon, seed)``; an inert plan
replays bit-identically to running without one; the hardened stack
keeps P1/P2 through crash/recover storms under a strict auditor; and
``jobs`` never changes faulted sweep results.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.clustering import (
    ClusterMaintenanceProtocol,
    DmacClustering,
    HighestConnectivityClustering,
    LowestIdClustering,
)
from repro.core.params import NetworkParameters
from repro.faults import (
    FAULT_CONFIG_KEYS,
    FaultConfig,
    FaultPlan,
    OutageSpec,
    attach_faults,
    build_plan,
    fault_config_from_dict,
)
from repro.mobility import ConstantVelocityModel, EpochRandomWaypointModel
from repro.obs import context as obs_context
from repro.obs.audit import InvariantAuditor
from repro.obs.tracer import CollectingTracer
from repro.routing import AodvProtocol, IntraClusterRoutingProtocol
from repro.sim import HelloProtocol, Simulation


def _params(n=60, vf=0.03):
    return NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=0.2, velocity_fraction=vf
    )


def _sim(params, seed=0, epoch=1.0):
    return Simulation(
        params, EpochRandomWaypointModel(params.velocity, epoch=epoch), seed=seed
    )


# ---------------------------------------------------------------------
# Declarative config
# ---------------------------------------------------------------------
class TestFaultConfig:
    def test_round_trip(self):
        config = fault_config_from_dict(
            {
                "crash_rate": 0.01,
                "crash_recover_after": 2.0,
                "loss_rate": 0.1,
                "hello_miss_limit": 3,
                "route_retries": 2,
                "outages": [
                    {"center": [0.2, 0.8], "radius": 0.1, "start": 1.0}
                ],
            }
        )
        assert fault_config_from_dict(config.to_dict()) == config

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown faults keys.*crash_rte"):
            fault_config_from_dict({"crash_rte": 0.1})

    def test_unknown_outage_key_rejected(self):
        with pytest.raises(ValueError, match="unknown outage keys"):
            fault_config_from_dict(
                {"outages": [{"radius": 0.1, "centre": [0.5, 0.5]}]}
            )

    @pytest.mark.parametrize(
        "block",
        [
            {"crash_rate": -0.1},
            {"loss_rate": 1.0},
            {"loss_rate": -0.2},
            {"crash_recover_after": 0.0},
            {"hello_miss_limit": 0},
            {"route_retries": -1},
            {"route_retry_backoff": 0.0},
            {"outages": [{"radius": 0.0}]},
        ],
    )
    def test_invalid_values_rejected(self, block):
        with pytest.raises(ValueError):
            fault_config_from_dict(block)

    def test_inert_property(self):
        assert FaultConfig().inert
        assert fault_config_from_dict({"hello_miss_limit": 5}).inert
        assert not FaultConfig(crash_rate=0.1).inert
        assert not FaultConfig(loss_rate=0.1).inert
        assert not FaultConfig(outages=(OutageSpec(),)).inert

    def test_all_keys_constructible(self):
        block = {key: getattr(FaultConfig(), key) for key in FAULT_CONFIG_KEYS}
        assert fault_config_from_dict(block) == FaultConfig()


class TestOutageSpec:
    def test_active_window(self):
        spec = OutageSpec(start=1.0, duration=2.0)
        assert not spec.active_at(0.5)
        assert spec.active_at(1.0)
        assert spec.active_at(2.9)
        assert not spec.active_at(3.0)
        assert OutageSpec(start=1.0).active_at(1e9)  # open-ended

    def test_center_moves_and_wraps(self):
        spec = OutageSpec(center=(0.9, 0.5), velocity=(0.2, 0.0), start=0.0)
        center = spec.center_at(1.0, side=10.0)
        np.testing.assert_allclose(center, [1.0, 5.0])  # wrapped past 10


# ---------------------------------------------------------------------
# Compiled schedule
# ---------------------------------------------------------------------
class TestBuildPlan:
    CONFIG = {"crash_rate": 0.05, "crash_recover_after": 1.5}

    def test_pure_function_of_inputs(self):
        one = build_plan(self.CONFIG, 80, horizon=20.0, seed=7)
        two = build_plan(self.CONFIG, 80, horizon=20.0, seed=7)
        assert one == two

    def test_seed_changes_schedule(self):
        one = build_plan(self.CONFIG, 80, horizon=20.0, seed=7)
        two = build_plan(self.CONFIG, 80, horizon=20.0, seed=8)
        assert one.events != two.events
        assert one.loss_entropy != two.loss_entropy

    def test_crashes_paired_with_recoveries(self):
        plan = build_plan(self.CONFIG, 80, horizon=20.0, seed=7)
        crashes = [e for e in plan.events if e[1] == "crash"]
        recoveries = [e for e in plan.events if e[1] == "recover"]
        assert crashes and len(crashes) == len(recoveries)
        recover_after = self.CONFIG["crash_recover_after"]
        times = sorted(t for t, _, _ in recoveries)
        expected = sorted(t + recover_after for t, _, _ in crashes)
        np.testing.assert_allclose(times, expected)

    def test_zero_rate_plan_is_inert(self):
        plan = build_plan({}, 80, horizon=20.0, seed=7)
        assert plan.events == ()
        assert plan.inert

    def test_permanent_crashes_have_no_recoveries(self):
        plan = build_plan({"crash_rate": 0.05}, 80, horizon=20.0, seed=7)
        assert plan.events
        assert all(kind == "crash" for _, kind, _ in plan.events)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_plan({}, 0, horizon=20.0, seed=7)
        with pytest.raises(ValueError):
            build_plan({}, 80, horizon=0.0, seed=7)


# ---------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------
def _explicit_plan(events, **config):
    return FaultPlan(
        config=FaultConfig(**config), horizon=100.0, events=tuple(events)
    )


class TestFaultInjector:
    def test_crash_then_recover_flips_radio_mask(self):
        sim = _sim(_params())
        plan = _explicit_plan(
            [(0.5, "crash", 3), (2.0, "recover", 3)], crash_rate=0.001
        )
        injector = attach_faults(sim, plan)
        while sim.time < 1.0:
            sim.step()
        assert not sim.active[3]
        assert injector.crashes_total == 1
        while sim.time < 2.5:
            sim.step()
        assert sim.active[3]
        assert injector.recoveries_total == 1

    def test_double_attach_rejected(self):
        sim = _sim(_params())
        attach_faults(sim, build_plan({}, sim.n_nodes, 10.0, seed=0))
        with pytest.raises(ValueError, match="already attached"):
            attach_faults(sim, build_plan({}, sim.n_nodes, 10.0, seed=0))

    def test_outage_region_silences_and_releases(self):
        sim = _sim(_params())
        # A region covering everything for one simulated second.
        spec = OutageSpec(center=(0.5, 0.5), radius=0.9, start=1.0, duration=1.0)
        injector = attach_faults(
            sim, _explicit_plan([], outages=(spec,))
        )
        while sim.time < 1.5:
            sim.step()
        assert not sim.active.any()
        assert injector.outage_enters_total == sim.n_nodes
        while sim.time < 2.5:
            sim.step()
        assert sim.active.all()
        assert injector.outage_exits_total == sim.n_nodes

    def test_fault_events_traced(self):
        tracer = CollectingTracer()
        with obs_context.observe(tracer=tracer):
            sim = _sim(_params())
            attach_faults(
                sim,
                _explicit_plan(
                    [(0.5, "crash", 1), (1.5, "recover", 1)],
                    crash_rate=0.001,
                    loss_rate=0.25,
                ),
            )
            while sim.time < 2.0:
                sim.step()
        events = [(r["event"], r.get("kind")) for r in tracer.records]
        assert ("fault_inject", "loss") in events  # attach-time marker
        assert ("fault_inject", "crash") in events
        assert ("fault_clear", "crash") in events


#: Global-counter fields that legitimately differ between two sims in
#: one process (ids are drawn from process-wide counters).
_ID_FIELDS = ("sim", "span", "parent", "src_span", "dst_span")


def _normalized(records):
    return [
        {k: v for k, v in record.items() if k not in _ID_FIELDS}
        for record in records
    ]


def _traced_run(seed, plan_factory, steps=30):
    tracer = CollectingTracer()
    with obs_context.observe(tracer=tracer):
        sim = _sim(_params(), seed=seed)
        plan = plan_factory(sim)
        if plan is not None:
            attach_faults(sim, plan)
        sim.attach(HelloProtocol(mode="event"))
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        sim.attach(maintenance)
        for _ in range(steps):
            sim.step()
        positions = sim.positions.copy()
        sent = {
            category: totals.messages
            for category, totals in sim.stats.totals.items()
        }
    return _normalized(tracer.records), positions, sent


class TestInertPlanIdentity:
    def test_zero_loss_plan_bit_identical_to_no_plan(self):
        """An attached but inert plan must not perturb the run at all."""
        bare = _traced_run(42, lambda sim: None)
        inert = _traced_run(
            42, lambda sim: build_plan({}, sim.n_nodes, 10.0, seed=42)
        )
        assert bare[0] == inert[0]
        np.testing.assert_array_equal(bare[1], inert[1])
        assert bare[2] == inert[2]

    def test_zero_loss_with_degradation_knobs_still_inert(self):
        bare = _traced_run(7, lambda sim: None)
        knobs = _traced_run(
            7,
            lambda sim: build_plan(
                {"hello_miss_limit": 3, "route_retries": 2},
                sim.n_nodes,
                10.0,
                seed=7,
            ),
        )
        assert bare[0] == knobs[0]


# ---------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------
class TestGracefulDegradation:
    def test_event_hello_loss_triggers_retransmits(self):
        sim = _sim(_params())
        injector = attach_faults(
            sim, _explicit_plan([], loss_rate=0.3)
        )
        sim.attach(HelloProtocol(mode="event"))
        for _ in range(40):
            sim.step()
        assert injector.hello_losses_total > 0
        assert injector.hello_retransmits_total > 0

    def test_periodic_hello_miss_tolerance(self):
        sim = _sim(_params())
        injector = attach_faults(sim, _explicit_plan([], loss_rate=0.3))
        sim.attach(HelloProtocol(mode="periodic", interval=0.5, miss_limit=3))
        for _ in range(60):
            sim.step()
        assert injector.hello_losses_total > 0

    def test_miss_limit_rejected_in_event_mode(self):
        with pytest.raises(ValueError, match="miss_limit"):
            HelloProtocol(mode="event", miss_limit=3)

    def test_aodv_retries_with_capped_backoff(self):
        # Nodes far outside radio range: every discovery fails, so the
        # retry chain runs to its cap.
        params = NetworkParameters.from_side(
            n_nodes=4, side=1000.0, tx_range=1.0, velocity=0.0
        )
        sim = Simulation(params, ConstantVelocityModel(0.0), seed=1)
        aodv = sim.attach(
            AodvProtocol(max_retries=2, retry_backoff=0.2, retry_backoff_cap=0.3)
        )
        assert aodv.discover(sim, 0, 3) is None
        assert aodv._pending  # retry scheduled
        for _ in range(20):
            sim.step()
        assert aodv.route_retries == 2
        assert not aodv._pending  # chain exhausted at the cap

    def test_aodv_retry_disabled_by_default(self):
        params = NetworkParameters.from_side(
            n_nodes=4, side=1000.0, tx_range=1.0, velocity=0.0
        )
        sim = Simulation(params, ConstantVelocityModel(0.0), seed=1)
        aodv = sim.attach(AodvProtocol())
        assert aodv.discover(sim, 0, 3) is None
        assert not aodv._pending

    @pytest.mark.parametrize(
        "algorithm",
        [LowestIdClustering(), HighestConnectivityClustering(), DmacClustering()],
        ids=["lid", "hcc", "dmac"],
    )
    def test_crash_storm_keeps_invariants_strict(self, algorithm):
        """P1/P2 hold through a crash/recover storm, strictly audited."""
        sim = _sim(_params(n=80), seed=3)
        attach_faults(
            sim,
            build_plan(
                {"crash_rate": 0.02, "crash_recover_after": 1.0, "loss_rate": 0.1},
                sim.n_nodes,
                horizon=8.0,
                seed=3,
            ),
        )
        sim.attach(HelloProtocol(mode="event"))
        maintenance = ClusterMaintenanceProtocol(algorithm)
        sim.attach(IntraClusterRoutingProtocol(maintenance))
        sim.attach(maintenance)
        auditor = sim.attach(
            InvariantAuditor(maintenance, every=0.5, strict=True)
        )
        while sim.time < 8.0:
            sim.step()  # strict auditor raises on any violation
        assert auditor.audits > 0
        assert auditor.violations == 0

    def test_crashed_head_members_reaffiliate(self):
        sim = _sim(_params(n=60), seed=5)
        sim.attach(HelloProtocol(mode="event"))
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        sim.attach(maintenance)
        for _ in range(10):
            sim.step()
        state = maintenance.state
        heads = [n for n in range(sim.n_nodes) if state.head_of[n] == n]
        victim = next(
            h for h in heads if any(state.head_of[m] == h for m in range(sim.n_nodes) if m != h)
        )
        attach_faults(
            sim,
            _explicit_plan([(sim.time + sim.dt / 2, "crash", victim)], crash_rate=0.001),
        )
        for _ in range(5):
            sim.step()
        from repro.clustering import check_properties

        assert check_properties(maintenance.state, sim.adjacency).ok


# ---------------------------------------------------------------------
# Sweep / scenario integration
# ---------------------------------------------------------------------
class TestSweepIntegration:
    FAULTS = {"crash_rate": 0.01, "crash_recover_after": 1.0, "loss_rate": 0.1}

    def test_jobs_do_not_change_faulted_results(self):
        from repro.analysis.sweep import measure_point

        params = _params(n=40)
        kwargs = dict(
            seeds=2, duration=2.0, warmup=0.5, faults=self.FAULTS
        )
        serial = measure_point(params, 0.03, jobs=1, **kwargs)
        fanned = measure_point(params, 0.03, jobs=2, **kwargs)
        assert serial.to_dict() == fanned.to_dict()

    def test_invalid_faults_rejected_before_workers(self):
        from repro.analysis.sweep import measure_point

        with pytest.raises(ValueError, match="unknown faults keys"):
            measure_point(
                _params(n=40), 0.03, seeds=1, duration=1.0, faults={"bogus": 1}
            )

    def test_faults_change_task_identity_but_not_classic_tasks(self):
        from repro.store import fingerprint, task_identity
        from repro.analysis.sweep import _run_once_task

        params = _params(n=40)
        classic = (params, 0, 2.0, 0.5, 1.0, LowestIdClustering())
        faulted = classic + (None, self.FAULTS)
        key_classic = fingerprint(task_identity(_run_once_task, classic))
        key_faulted = fingerprint(task_identity(_run_once_task, faulted))
        assert key_classic != key_faulted

    def test_scenario_faults_block(self):
        from repro.scenario import ScenarioConfig, run_scenario

        config = ScenarioConfig.from_dict(
            {
                "name": "chaos-test",
                "n_nodes": 40,
                "range_fraction": 0.2,
                "velocity_fraction": 0.03,
                "duration": 2.0,
                "warmup": 0.5,
                "seed": 1,
                "faults": {
                    "crash_rate": 0.01,
                    "crash_recover_after": 1.0,
                    "loss_rate": 0.1,
                    "hello_miss_limit": 3,
                },
            }
        )
        report = run_scenario(config)
        assert report is not None

    def test_scenario_rejects_unknown_fault_keys(self):
        from repro.scenario import ScenarioConfig

        with pytest.raises(ValueError, match="unknown faults keys"):
            ScenarioConfig.from_dict(
                {
                    "name": "bad",
                    "n_nodes": 40,
                    "range_fraction": 0.2,
                    "velocity_fraction": 0.03,
                    "duration": 2.0,
                    "faults": {"crash_rat": 0.01},
                }
            )

    def test_chaos_table_ratios(self):
        from repro.experiments.chaos_overhead import chaos_table

        roster = (("none", None), ("crash", {"crash_rate": 0.01}))
        measured = {
            (0, "none"): {"f_hello": 1.0, "f_cluster": 1.0, "f_route": 2.0},
            (0, "crash"): {"f_hello": 1.0, "f_cluster": 2.0, "f_route": 3.0},
        }
        table = chaos_table([0.05], measured, roster, "test")
        rows = table.rows
        assert rows[0][-1] == "baseline"
        assert rows[1][-1] == "1.500x"
        assert any("1.500x" in note for note in table.notes)


# ---------------------------------------------------------------------
# Worker-pool resilience (satellite: BrokenProcessPool retry)
# ---------------------------------------------------------------------
def _die_once(task):
    flag, value = task
    if not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(1)  # simulate a worker killed mid-task
    return value * 2


def _die_always(task):
    os._exit(1)


class TestBrokenPoolRetry:
    @pytest.fixture(autouse=True)
    def _fast_backoff(self, monkeypatch):
        import repro.analysis.parallel as parallel

        monkeypatch.setattr(parallel, "_POOL_RETRY_BACKOFF", 0.01)
        yield
        parallel._discard_pool()

    def test_transient_worker_death_is_retried(self, tmp_path):
        from repro.analysis.parallel import run_tasks
        from repro.obs.metrics import MetricsRegistry

        flag = str(tmp_path / "died")
        registry = MetricsRegistry()
        with obs_context.observe(registry=registry):
            results = run_tasks(
                _die_once, [(flag, v) for v in range(6)], jobs=2
            )
        assert results == [v * 2 for v in range(6)]
        gauges = {
            row["name"]: row["value"]
            for row in registry.to_dict()["gauges"]
        }
        assert gauges.get("worker_retries", 0) >= 1

    def test_persistent_worker_death_raises(self):
        from concurrent.futures.process import BrokenProcessPool

        from repro.analysis.parallel import run_tasks

        with pytest.raises(BrokenProcessPool):
            run_tasks(_die_always, list(range(4)), jobs=2)


# ---------------------------------------------------------------------
# CLI interrupt handling (satellite: clean Ctrl-C)
# ---------------------------------------------------------------------
class TestCliInterrupt:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        from repro import cli

        def _interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_run_simulate", _interrupted)
        code = cli.main(["simulate", "whatever.json"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err
