"""Tests for the flat AODV baseline."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.routing import AodvProtocol
from repro.sim import Simulation


def _sim(n=60, vf=0.0, seed=51):
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=0.25, velocity_fraction=vf
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    aodv = sim.attach(AodvProtocol())
    return sim, aodv


class TestDiscovery:
    def test_self_route(self):
        sim, aodv = _sim()
        assert aodv.discover(sim, 2, 2) == [2]

    def test_discovers_shortest_path(self):
        sim, aodv = _sim()
        graph = nx.from_numpy_array(sim.adjacency)
        for source, destination in [(0, 30), (10, 50)]:
            if not nx.has_path(graph, source, destination):
                continue
            path = aodv.discover(sim, source, destination)
            assert path is not None
            assert len(path) - 1 == nx.shortest_path_length(
                graph, source, destination
            )

    def test_flood_reaches_whole_component(self):
        sim, aodv = _sim()
        sim.stats.start_measuring()
        graph = nx.from_numpy_array(sim.adjacency)
        component = nx.node_connected_component(graph, 0)
        far = max(
            component,
            key=lambda node: nx.shortest_path_length(graph, 0, node),
        )
        if far == 0:
            pytest.skip("node 0 isolated")
        aodv.discover(sim, 0, int(far))
        # Every non-destination component node rebroadcasts once.
        rreq = sim.stats.message_count("aodv") - (
            nx.shortest_path_length(graph, 0, far)
        )
        assert rreq == len(component) - 1

    def test_unreachable_destination(self):
        sim, aodv = _sim()
        sim.adjacency[9, :] = False
        sim.adjacency[:, 9] = False
        assert aodv.discover(sim, 0, 9) is None
        assert aodv.discoveries == 1

    def test_installs_forward_and_reverse_state(self):
        sim, aodv = _sim(seed=52)
        path = aodv.discover(sim, 0, 40)
        if path is None:
            pytest.skip("unreachable")
        for position, node in enumerate(path[:-1]):
            entry = aodv.routes[node][40]
            assert entry.next_hop == path[position + 1]
        for position, node in enumerate(path[1:], start=1):
            entry = aodv.routes[node][0]
            assert entry.next_hop == path[position - 1]


class TestRouteReuse:
    def test_cache_hit_avoids_second_flood(self):
        sim, aodv = _sim(seed=53)
        first = aodv.route(sim, 0, 35)
        if first is None:
            pytest.skip("unreachable")
        sim.stats.start_measuring()
        second = aodv.route(sim, 0, 35)
        assert second == first
        assert aodv.cache_hits == 1
        assert sim.stats.message_count("aodv") == 0

    def test_intermediate_nodes_can_reuse_reverse_routes(self):
        sim, aodv = _sim(seed=54)
        path = aodv.discover(sim, 0, 45)
        if path is None or len(path) < 3:
            pytest.skip("no multi-hop route")
        midpoint = path[len(path) // 2]
        back = aodv.route(sim, midpoint, 0)
        assert back is not None
        assert aodv.discoveries == 1  # reverse state reused, no new flood


class TestErrorHandling:
    def test_link_break_invalidates_and_rerrs(self):
        sim, aodv = _sim(seed=55)
        path = aodv.discover(sim, 0, 45)
        if path is None or len(path) < 2:
            pytest.skip("no route")
        u, v = path[0], path[1]
        sim.adjacency[u, v] = sim.adjacency[v, u] = False
        sim.stats.start_measuring()
        aodv.on_link_down(sim, min(u, v), max(u, v), 0.0)
        assert sim.stats.message_count("aodv_rerr") >= 1
        assert 45 not in aodv.routes[u] or aodv.routes[u][45].next_hop != v

    def test_stale_route_triggers_rediscovery(self):
        sim, aodv = _sim(vf=0.05, seed=56)
        path = aodv.route(sim, 0, 30)
        if path is None:
            pytest.skip("unreachable")
        # Move until the cached route's first hop breaks.
        for _ in range(400):
            sim.step()
            if not sim.has_link(path[0], path[1]):
                break
        else:
            pytest.skip("route never broke")
        before = aodv.discoveries
        fresh = aodv.route(sim, 0, 30)
        if fresh is not None:
            for a, b in zip(fresh, fresh[1:]):
                assert sim.has_link(a, b)
        assert aodv.discoveries == before + 1

    def test_installed_entries_accounting(self):
        sim, aodv = _sim(seed=57)
        assert aodv.installed_entries == 0
        path = aodv.discover(sim, 0, 45)
        if path is not None:
            assert aodv.installed_entries == 2 * (len(path) - 1)
