"""Tests for windowed rate series and dynamic-priority maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    ClusterMaintenanceProtocol,
    HighestConnectivityClustering,
    check_properties,
)
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.sim import MessageStats, RateSeries, Simulation
from repro.sim.beacon import HelloProtocol


class TestRateSeries:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            RateSeries(MessageStats(10), "hello", 0.0)

    def test_windows_accumulate(self):
        stats = MessageStats(10)
        stats.start_measuring()
        series = RateSeries(stats, "hello", window=1.0)
        series.sample(0.0)
        for step in range(1, 31):
            stats.record("hello", 5)
            stats.advance_time(0.1)
            series.sample(step * 0.1)
        # ~3 completed windows of 1.0 each.
        assert len(series.rates) == 3
        # 5 msgs per 0.1t over 10 nodes -> 5 msgs/node/t.
        for rate in series.rates:
            assert rate == pytest.approx(5.0, rel=0.01)

    def test_steady_state_skips_transient(self):
        stats = MessageStats(1)
        stats.start_measuring()
        series = RateSeries(stats, "x", window=1.0)
        # Fake windows directly.
        series.rates = [100.0, 10.0, 10.0, 10.0]
        assert series.steady_state_rate() == pytest.approx(10.0)

    def test_empty_series_raises(self):
        series = RateSeries(MessageStats(1), "x", window=1.0)
        with pytest.raises(ValueError):
            series.steady_state_rate()

    def test_window_exactly_equal_to_elapsed(self):
        """A sample landing exactly on the window boundary closes it."""
        stats = MessageStats(10)
        stats.start_measuring()
        series = RateSeries(stats, "hello", window=1.0)
        series.sample(0.0)
        stats.record("hello", 20)
        stats.advance_time(1.0)
        series.sample(1.0)
        assert series.times == [1.0]
        assert series.rates == [pytest.approx(2.0)]  # 20 / (10 nodes * 1.0)

    def test_steady_state_rate_with_one_window(self):
        """One completed window: skip_fraction truncates to zero skipped."""
        stats = MessageStats(5)
        stats.start_measuring()
        series = RateSeries(stats, "hello", window=1.0)
        series.sample(0.0)
        stats.record("hello", 10)
        series.sample(1.0)
        assert len(series.rates) == 1
        assert series.steady_state_rate() == pytest.approx(2.0)
        # Even an aggressive skip keeps the sole window.
        assert series.steady_state_rate(skip_fraction=0.9) == pytest.approx(2.0)

    def test_sampling_while_measurement_stopped(self):
        """Windows elapsing while stats ignore records yield zero rates."""
        stats = MessageStats(10)
        series = RateSeries(stats, "hello", window=1.0)
        series.sample(0.0)
        stats.record("hello", 50)  # dropped: measurement not started
        series.sample(1.0)
        assert series.rates == [pytest.approx(0.0)]
        stats.start_measuring()
        stats.record("hello", 30)
        series.sample(2.0)
        assert series.rates[-1] == pytest.approx(3.0)

    def test_live_simulation_series(self):
        params = NetworkParameters.from_fractions(
            n_nodes=80, range_fraction=0.15, velocity_fraction=0.05
        )
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=1
        )
        sim.attach(HelloProtocol("event"))
        sim.stats.start_measuring()
        series = RateSeries(sim.stats, "hello", window=2.0)
        series.sample(sim.time)
        for _ in range(int(round(12.0 / sim.dt))):
            sim.step()
            series.sample(sim.time)
        assert len(series.rates) >= 5
        # Steady state should match the end-of-run average closely.
        overall = sim.stats.per_node_frequency("hello")
        assert series.steady_state_rate() == pytest.approx(overall, rel=0.25)


class TestDynamicPriorityMaintenance:
    def test_hcc_dynamic_stays_valid(self):
        params = NetworkParameters.from_fractions(
            n_nodes=70, range_fraction=0.2, velocity_fraction=0.05
        )
        sim = Simulation(
            params, EpochRandomWaypointModel(params.velocity, 1.0), seed=2
        )
        maintenance = ClusterMaintenanceProtocol(
            HighestConnectivityClustering(), dynamic_priority=True
        )
        sim.attach(maintenance)
        for _ in range(120):
            sim.step()
            violations = check_properties(maintenance.state, sim.adjacency)
            assert violations.ok, violations.describe()

    def test_dynamic_priority_changes_merge_outcomes(self):
        """With live degrees, the denser head can win a merge that the
        formation-time priorities would have decided the other way."""
        params = NetworkParameters.from_fractions(
            n_nodes=70, range_fraction=0.2, velocity_fraction=0.05
        )

        def head_series(dynamic):
            sim = Simulation(
                params, EpochRandomWaypointModel(params.velocity, 1.0), seed=3
            )
            maintenance = ClusterMaintenanceProtocol(
                HighestConnectivityClustering(), dynamic_priority=dynamic
            )
            sim.attach(maintenance)
            heads = []
            for _ in range(150):
                sim.step()
                heads.append(tuple(sorted(maintenance.state.heads())))
            return heads

        static = head_series(False)
        dynamic = head_series(True)
        # The two policies must eventually diverge on the same trace.
        assert static != dynamic
