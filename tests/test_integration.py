"""End-to-end integration tests: the paper's claims on the full stack.

These tests tie the analytical model (repro.core) to the simulation
stack (repro.sim + repro.clustering + repro.routing) exactly the way
Section 4 of the paper does, and assert the agreements the paper
reports.  They are the single most important tests of the reproduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    ClusterMaintenanceProtocol,
    LowestIdClustering,
    check_properties,
)
from repro.core import overhead as oh
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.routing import (
    DsdvProtocol,
    HybridRoutingProtocol,
    IntraClusterRoutingProtocol,
)
from repro.sim import HelloProtocol, Simulation


@pytest.fixture(scope="module")
def measured_stack():
    """One full measurement run shared by the agreement tests."""
    params = NetworkParameters.from_fractions(
        n_nodes=150, range_fraction=0.15, velocity_fraction=0.05
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=77
    )
    sim.attach(HelloProtocol("event"))
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    intra = IntraClusterRoutingProtocol(maintenance)
    sim.attach(intra)
    sim.attach(maintenance)
    stats = sim.run(duration=25.0, warmup=3.0)
    return params, sim, maintenance, stats


class TestFrequencyAgreement:
    """Figures 1-3 agreement at one parameter point."""

    def test_hello_matches_analysis(self, measured_stack):
        params, _, _, stats = measured_stack
        measured = stats.per_node_frequency("hello")
        predicted = oh.hello_frequency(params)
        # Claim 1 underestimates the torus degree slightly; 25% covers it.
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_cluster_matches_analysis(self, measured_stack):
        params, _, maintenance, stats = measured_stack
        measured = stats.per_node_frequency("cluster")
        predicted = oh.cluster_frequency(params, maintenance.head_ratio())
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_route_is_lower_bounded_by_analysis(self, measured_stack):
        params, _, maintenance, stats = measured_stack
        measured = stats.per_node_frequency("route")
        predicted = oh.route_frequency(params, maintenance.head_ratio())
        # The analysis is an explicit lower bound (its member-member
        # intra-cluster link estimate ignores spatial correlation).
        assert measured > 0.7 * predicted
        # ...but not absurdly loose at this density.
        assert measured < 4.0 * predicted

    def test_printed_convention_fits_worse_for_cluster(self, measured_stack):
        params, _, maintenance, stats = measured_stack
        measured = stats.per_node_frequency("cluster")
        p_head = maintenance.head_ratio()
        err_consistent = abs(
            measured - oh.cluster_frequency(params, p_head, "consistent")
        )
        err_printed = abs(
            measured - oh.cluster_frequency(params, p_head, "printed")
        )
        assert err_consistent < err_printed


class TestStructuralInvariants:
    def test_structure_valid_at_end(self, measured_stack):
        _, sim, maintenance, _ = measured_stack
        assert check_properties(maintenance.state, sim.adjacency).ok

    def test_head_ratio_in_sane_band(self, measured_stack):
        _, _, maintenance, _ = measured_stack
        assert 0.02 < maintenance.head_ratio() < 0.8


class TestHybridVsFlat:
    """The introduction's motivation: clustering reduces overhead."""

    def test_hybrid_cheaper_than_dsdv(self):
        params = NetworkParameters.from_fractions(
            n_nodes=120, range_fraction=0.18, velocity_fraction=0.03
        )

        def overhead_for(stack: str) -> float:
            sim = Simulation(
                params, EpochRandomWaypointModel(params.velocity, 1.0), seed=9
            )
            if stack == "hybrid":
                sim.attach(HelloProtocol("event"))
                maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
                intra = IntraClusterRoutingProtocol(maintenance)
                sim.attach(intra)
                sim.attach(maintenance)
                sim.attach(HybridRoutingProtocol(maintenance, intra))
            else:
                sim.attach(DsdvProtocol(periodic_interval=1.0))
            stats = sim.run(duration=8.0, warmup=1.0)
            return stats.total_overhead()

        hybrid = overhead_for("hybrid")
        dsdv = overhead_for("dsdv")
        assert hybrid < dsdv

    def test_backbone_flood_cheaper_than_full_flood(self):
        """Clustered RREQ floods < AODV network-wide floods."""
        from repro.routing import AodvProtocol, discover_route

        params = NetworkParameters.from_fractions(
            n_nodes=150, range_fraction=0.15, velocity_fraction=0.0
        )
        sim = Simulation(
            params, EpochRandomWaypointModel(0.0, 1.0), seed=10
        )
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        sim.attach(maintenance)
        aodv = sim.attach(AodvProtocol())

        rng = np.random.default_rng(1)
        backbone = full = 0
        pairs = 0
        while pairs < 10:
            u, v = (int(x) for x in rng.integers(0, params.n_nodes, 2))
            if u == v:
                continue
            result = discover_route(
                sim, maintenance.state, u, v, record_stats=False
            )
            if not result.found:
                continue
            sim.stats.start_measuring()
            sim.stats.measured_time = 1.0
            before = sim.stats.message_count("aodv")
            aodv.discover(sim, u, v)
            full += sim.stats.message_count("aodv") - before
            backbone += result.rreq_transmissions
            pairs += 1
        assert backbone < full


class TestDeterminism:
    def test_identical_runs_identical_stats(self):
        params = NetworkParameters.from_fractions(
            n_nodes=60, range_fraction=0.18, velocity_fraction=0.05
        )

        def run():
            sim = Simulation(
                params, EpochRandomWaypointModel(params.velocity, 1.0), seed=5
            )
            sim.attach(HelloProtocol("event"))
            maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
            intra = IntraClusterRoutingProtocol(maintenance)
            sim.attach(intra)
            sim.attach(maintenance)
            stats = sim.run(duration=5.0, warmup=0.5)
            return {
                category: totals.messages
                for category, totals in stats.totals.items()
            }

        assert run() == run()
