"""Cross-run diffing: digests, threshold gating, attribution, CLI."""

from __future__ import annotations

import json

import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.cli import main
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.obs import JsonlTracer, TraceDigest, compare_traces, observe
from repro.obs.compare import ComparisonRow, diff_phases
from repro.sim import HelloProtocol, Simulation


def _write_trace(path, *, seed, velocity_fraction=0.05, duration=4.0):
    params = NetworkParameters.from_fractions(
        n_nodes=60,
        range_fraction=0.22,
        velocity_fraction=velocity_fraction,
    )
    with JsonlTracer(path, step_every=5) as tracer:
        with observe(tracer=tracer):
            sim = Simulation(
                params,
                EpochRandomWaypointModel(params.velocity, epoch=1.0),
                seed=seed,
                tracer=tracer,
            )
            sim.attach(HelloProtocol(mode="event"))
            maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
            sim.attach(maintenance)
            from repro.clustering import attach_cluster_dynamics

            attach_cluster_dynamics(sim, maintenance)
            sim.run(duration=duration, warmup=1.0)
    return path


@pytest.fixture
def trace_a(tmp_path):
    return _write_trace(tmp_path / "a.jsonl", seed=1)


@pytest.fixture
def trace_b(tmp_path):
    # Much faster nodes: more churn, higher maintenance rates.
    return _write_trace(
        tmp_path / "b.jsonl", seed=2, velocity_fraction=0.45
    )


class TestTraceDigest:
    def test_digest_has_rates_and_dynamics(self, trace_a):
        digest = TraceDigest.from_trace(trace_a)
        assert digest.runs == 1
        assert {"cluster", "hello"} <= set(digest.rates)
        assert "head_change_rate" in digest.dynamics
        assert "reaffiliation_rate" in digest.dynamics
        assert digest.spans["started"] == digest.spans["ended"] > 0


class TestCompareTraces:
    def test_self_compare_is_zero_and_within(self, trace_a):
        comparison = compare_traces(trace_a, trace_a)
        assert comparison.within_threshold
        for row in comparison.rows:
            assert row.delta == 0.0
            assert row.rel == 0.0
        assert not comparison.verdict_changes

    def test_different_runs_exceed_and_attribute(self, trace_a, trace_b):
        comparison = compare_traces(trace_a, trace_b)
        assert not comparison.within_threshold
        exceeding = {row.metric for row in comparison.exceeding()}
        assert any(m.startswith("rate:") for m in exceeding)
        # Acceptance criterion: at least one overhead delta is
        # attributed to a cluster-dynamics delta.
        attributions = comparison.attributions()
        assert any("attributed to" in line for line in attributions)
        assert any(
            "head-change rate" in line or "reaffiliation rate" in line
            for line in attributions
        )

    def test_non_gating_rows_never_gate(self, trace_a, trace_b):
        comparison = compare_traces(trace_a, trace_b)
        for row in comparison.exceeding():
            assert row.gating
            assert not row.metric.startswith(("phase:", "spans:"))

    def test_rel_from_zero_is_inf(self):
        row = ComparisonRow(metric="x", a=0.0, b=1.0, gating=True)
        assert row.rel == float("inf")
        row = ComparisonRow(metric="x", a=0.0, b=0.0, gating=True)
        assert row.rel == 0.0

    def test_missing_side_gives_none_rel(self):
        row = ComparisonRow(metric="x", a=None, b=1.0, gating=True)
        assert row.rel is None and row.delta is None

    def test_threshold_validation(self, trace_a):
        with pytest.raises(ValueError):
            compare_traces(trace_a, trace_a, threshold=0.0)

    def test_to_dict_is_json_serializable(self, trace_a, trace_b):
        payload = compare_traces(trace_a, trace_b).to_dict()
        text = json.dumps(payload)
        assert json.loads(text)["within_threshold"] is False

    def test_verdict_flip_fails_gate(self, tmp_path):
        def write(path, ok):
            records = [
                {"schema": 1, "event": "run_begin", "t": 0.0, "sim": 0,
                 "n_nodes": 10},
                {"schema": 1, "event": "residual", "t": 1.0, "sim": 0,
                 "kind": "final", "category": "cluster", "ok": ok},
                {"schema": 1, "event": "run_end", "t": 1.0, "sim": 0,
                 "measured_time": 1.0},
            ]
            path.write_text(
                "\n".join(json.dumps(r) for r in records) + "\n"
            )
            return path

        a = write(tmp_path / "ok.jsonl", True)
        b = write(tmp_path / "bad.jsonl", False)
        comparison = compare_traces(a, b)
        assert not comparison.within_threshold
        assert comparison.verdict_changes
        assert "cluster" in comparison.verdict_changes[0]


class TestDiffPhases:
    def test_sorted_by_absolute_delta(self):
        lines = diff_phases(
            {"adjacency": 1.0, "mobility": 0.5},
            {"adjacency": 3.0, "mobility": 0.6},
        )
        assert lines[0].startswith("adjacency:")
        assert "+200.0%" in lines[0]

    def test_new_phase_reports_inf(self):
        (line,) = diff_phases({}, {"new": 0.5})
        assert "+inf" in line

    def test_top_limits_output(self):
        phases_a = {f"p{i}": 1.0 for i in range(10)}
        phases_b = {f"p{i}": 2.0 + i for i in range(10)}
        assert len(diff_phases(phases_a, phases_b, top=3)) == 3

    def test_unchanged_zero_phases_dropped(self):
        assert diff_phases({"idle": 0.0}, {"idle": 0.0}) == []


class TestCompareCli:
    def test_self_compare_exits_zero(self, trace_a, capsys):
        code = main(["compare", str(trace_a), str(trace_a)])
        assert code == 0
        assert "WITHIN THRESHOLD" in capsys.readouterr().out

    def test_different_traces_exit_one(self, trace_a, trace_b, capsys):
        code = main(["compare", str(trace_a), str(trace_b)])
        assert code == 1
        out = capsys.readouterr().out
        assert "EXCEEDS THRESHOLD" in out
        assert "attributed to" in out

    def test_huge_threshold_passes(self, trace_a, trace_b):
        code = main(
            ["compare", str(trace_a), str(trace_b), "--threshold", "50"]
        )
        assert code == 0

    def test_missing_file_exits_two(self, trace_a, capsys):
        code = main(["compare", str(trace_a), "/nonexistent.jsonl"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_json_output(self, trace_a, capsys):
        code = main(["compare", str(trace_a), str(trace_a), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["within_threshold"] is True
        assert payload["rows"]


class TestTimelineCli:
    def test_timeline_roundtrip(self, trace_a, tmp_path, capsys):
        out = tmp_path / "t.json"
        code = main(["timeline", str(trace_a), "--out", str(out)])
        assert code == 0
        assert json.loads(out.read_text())["traceEvents"]

    def test_timeline_missing_file_exits_two(self, capsys):
        code = main(["timeline", "/nonexistent.jsonl"])
        assert code == 2
