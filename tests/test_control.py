"""The adaptive beaconing control plane: policies, signals, wiring.

Covers the :mod:`repro.control` subsystem end to end: policy decision
rules against synthetic signals, the :class:`ControlSignals` engine tap,
the adaptive :class:`HelloProtocol` mode (including the bit-identity of
the ``fixed`` policy with the classic ``periodic`` mode, gated through
the compare CLI), scenario/beacon config validation, store-identity and
``jobs`` determinism of beacon-configured sweeps, and the control
telemetry (``control_window`` events, histograms, report and compare
surfaces).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.cli import main
from repro.control import (
    AnalyticRatePolicy,
    BeaconPolicy,
    ChurnFeedbackPolicy,
    ControlSignals,
    FixedPeriodPolicy,
    StalenessBoundedPolicy,
    build_policy,
)
from repro.core.linkdynamics import (
    bcv_link_change_rate,
    bcv_link_generation_rate,
)
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.obs import (
    CollectingTracer,
    JsonlTracer,
    MetricsRegistry,
    TraceDigest,
    compare_traces,
    observe,
)
from repro.obs import spans
from repro.obs.attribution import (
    CAUSE_CHURN_HELLO,
    CAUSE_PERIODIC_HELLO,
    CAUSE_STALENESS_HELLO,
    KNOWN_CAUSES,
    attach_attribution,
)
from repro.sim import HelloProtocol, Simulation
from repro.sim.beacon import hello_from_config


def _params(n=40, vf=0.05):
    return NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=0.15, velocity_fraction=vf
    )


def _sim(params, seed=0, tracer=None):
    return Simulation(
        params,
        EpochRandomWaypointModel(params.velocity, epoch=1.0),
        seed=seed,
        tracer=tracer,
    )


class FakeSignals:
    """Synthetic ControlSignals stand-in for policy unit tests."""

    def __init__(self, params, rates, degrees, windows_closed=1):
        self.params = params
        self.n_nodes = len(rates)
        self.rates = np.asarray(rates, dtype=float)
        self.degrees = np.asarray(degrees, dtype=float)
        self.windows_closed = windows_closed

    def link_change_rate(self, node):
        return float(self.rates[node])

    def degree(self, node):
        return float(self.degrees[node])

    def mean_link_change_rate(self):
        return float(self.rates.mean())


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------
class TestFixedPeriodPolicy:
    def test_returns_interval_verbatim(self):
        policy = FixedPeriodPolicy(interval=0.7)
        assert policy.next_interval(0, None) == 0.7
        assert policy.initial_interval() == 0.7
        assert not policy.adaptive
        assert policy.cause == CAUSE_PERIODIC_HELLO

    def test_spec_round_trips(self):
        policy = FixedPeriodPolicy(interval=0.7)
        rebuilt = build_policy(policy.spec())
        assert isinstance(rebuilt, FixedPeriodPolicy)
        assert rebuilt.interval == 0.7

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            FixedPeriodPolicy(interval=0.0)


class TestAnalyticRatePolicy:
    def test_inverse_of_eqn4_rate(self):
        params = _params()
        signals = FakeSignals(params, rates=[1.0], degrees=[6.0])
        policy = AnalyticRatePolicy()
        rate = bcv_link_generation_rate(6.0, params.tx_range, params.velocity)
        assert policy.next_interval(0, signals) == pytest.approx(
            min(8.0, max(0.1, 1.0 / rate))
        )

    def test_zero_degree_stretches_to_max(self):
        signals = FakeSignals(_params(), rates=[1.0], degrees=[0.0])
        assert AnalyticRatePolicy().next_interval(0, signals) == 8.0

    def test_clamps_to_bounds(self):
        params = _params(vf=0.45)
        signals = FakeSignals(params, rates=[1.0], degrees=[500.0])
        policy = AnalyticRatePolicy(min_interval=0.2, max_interval=2.0)
        assert policy.next_interval(0, signals) == 0.2

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="min_interval"):
            AnalyticRatePolicy(min_interval=2.0, max_interval=1.0)


class TestChurnFeedbackPolicy:
    def test_cold_start_holds_interval(self):
        signals = FakeSignals(
            _params(), rates=[0.0], degrees=[5.0], windows_closed=0
        )
        policy = ChurnFeedbackPolicy(interval=1.0)
        assert policy.next_interval(0, signals) == 1.0

    def test_high_churn_shrinks_low_churn_stretches(self):
        params = _params()
        expected = bcv_link_change_rate(5.0, params.tx_range, params.velocity)
        policy = ChurnFeedbackPolicy(interval=1.0)
        hot = FakeSignals(params, rates=[10.0 * expected], degrees=[5.0])
        assert policy.next_interval(0, hot) == pytest.approx(0.8)
        cold = FakeSignals(params, rates=[0.0], degrees=[5.0])
        assert policy.next_interval(0, cold) == pytest.approx(0.8 * 1.25)

    def test_multiplicative_convergence_respects_clamp(self):
        params = _params()
        policy = ChurnFeedbackPolicy(interval=1.0, min_interval=0.5)
        hot = FakeSignals(params, rates=[1e6], degrees=[5.0])
        for _ in range(50):
            interval = policy.next_interval(0, hot)
        assert interval == 0.5

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError, match="low"):
            ChurnFeedbackPolicy(low=1.5, high=1.0)
        with pytest.raises(ValueError, match="increase"):
            ChurnFeedbackPolicy(increase=0.9)
        with pytest.raises(ValueError, match="decrease"):
            ChurnFeedbackPolicy(decrease=1.1)


class TestStalenessBoundedPolicy:
    def test_cold_start_holds_interval(self):
        signals = FakeSignals(
            _params(), rates=[0.0], degrees=[5.0], windows_closed=0
        )
        assert StalenessBoundedPolicy(interval=1.0).next_interval(0, signals) == 1.0

    def test_inverts_staleness_model_for_explicit_target(self):
        signals = FakeSignals(_params(), rates=[2.0], degrees=[5.0])
        policy = StalenessBoundedPolicy(target=3.0, timeout_multiple=2.5)
        # T = target / (0.5 * lambda * (m + 0.5)) = 3 / (0.5 * 2 * 3) = 1.0
        assert policy.next_interval(0, signals) == pytest.approx(1.0)

    def test_default_target_self_calibrates_to_mean_rate(self):
        # Nodes at the network-mean rate keep the base interval; a node
        # at half the mean doubles it.
        signals = FakeSignals(_params(), rates=[2.0, 2.0, 1.0], degrees=[5.0] * 3)
        policy = StalenessBoundedPolicy(interval=1.0)
        mean = signals.mean_link_change_rate()
        assert policy.next_interval(0, signals) == pytest.approx(mean / 2.0)
        assert policy.next_interval(2, signals) == pytest.approx(mean / 1.0)

    def test_quiet_node_stretches_to_max(self):
        signals = FakeSignals(_params(), rates=[0.0, 4.0], degrees=[5.0, 5.0])
        assert StalenessBoundedPolicy().next_interval(0, signals) == 8.0

    def test_rejects_timeout_multiple_at_or_below_one(self):
        with pytest.raises(ValueError, match="timeout_multiple"):
            StalenessBoundedPolicy(timeout_multiple=1.0)


class TestBuildPolicy:
    def test_policy_instances_pass_through(self):
        policy = ChurnFeedbackPolicy()
        assert build_policy(policy) is policy

    def test_unknown_policy_lists_valid_names(self):
        with pytest.raises(ValueError) as error:
            build_policy({"policy": "psychic"})
        message = str(error.value)
        assert "psychic" in message
        for name in ("fixed", "analytic-rate", "churn-feedback", "staleness-bounded"):
            assert name in message

    def test_unknown_parameter_lists_valid_keys(self):
        with pytest.raises(ValueError) as error:
            build_policy({"policy": "staleness-bounded", "margni": 1.1})
        message = str(error.value)
        assert "margni" in message
        assert "margin" in message

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="dict"):
            build_policy(42)

    def test_every_policy_spec_round_trips(self):
        for cls in (
            FixedPeriodPolicy,
            AnalyticRatePolicy,
            ChurnFeedbackPolicy,
            StalenessBoundedPolicy,
        ):
            policy = cls()
            rebuilt = build_policy(policy.spec())
            assert type(rebuilt) is cls
            assert rebuilt.spec() == policy.spec()

    def test_every_policy_has_distinct_known_cause(self):
        causes = {
            cls.cause
            for cls in (
                AnalyticRatePolicy,
                ChurnFeedbackPolicy,
                StalenessBoundedPolicy,
            )
        }
        assert len(causes) == 3
        assert causes <= set(KNOWN_CAUSES)


# ---------------------------------------------------------------------------
# ControlSignals
# ---------------------------------------------------------------------------
class TestControlSignals:
    def test_windows_close_and_rates_track_churn(self):
        params = _params(vf=0.2)
        sim = _sim(params, seed=1)
        signals = ControlSignals(sim, window=1.0, alpha=0.5)
        steps = int(round(5.0 / sim.dt))
        for _ in range(steps):
            sim.step()
        assert signals.windows_closed >= 4
        assert signals.mean_link_change_rate() > 0.0
        assert signals.last_window is not None
        assert signals.last_window["elapsed"] == pytest.approx(1.0, rel=0.1)
        # Faster networks churn more.
        slow_sim = _sim(_params(vf=0.01), seed=1)
        slow = ControlSignals(slow_sim, window=1.0, alpha=0.5)
        for _ in range(steps):
            slow_sim.step()
        assert signals.mean_link_change_rate() > slow.mean_link_change_rate()

    def test_tap_is_a_pure_observer(self):
        params = _params()
        steps = int(round(2.0 / params.side))  # arbitrary small count
        baseline = _sim(params, seed=7)
        for _ in range(40):
            baseline.step()
        reference = baseline.positions.copy()
        tapped = _sim(params, seed=7)
        ControlSignals(tapped, window=1.0, alpha=0.5)
        for _ in range(40):
            tapped.step()
        assert np.array_equal(reference, tapped.positions)

    def test_validation(self):
        sim = _sim(_params())
        with pytest.raises(ValueError, match="window"):
            ControlSignals(sim, window=0.0)
        with pytest.raises(ValueError, match="alpha"):
            ControlSignals(sim, alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            ControlSignals(sim, alpha=1.5)


# ---------------------------------------------------------------------------
# HelloProtocol adaptive mode
# ---------------------------------------------------------------------------
class TestHelloProtocolValidation:
    def test_timeout_must_exceed_interval(self):
        with pytest.raises(ValueError, match="timeout"):
            HelloProtocol("periodic", interval=1.0, timeout=1.0)
        with pytest.raises(ValueError, match="timeout"):
            HelloProtocol("periodic", interval=1.0, timeout=0.5)

    def test_default_timeout_is_two_point_five_intervals(self):
        hello = HelloProtocol("periodic", interval=0.4)
        assert hello.timeout == pytest.approx(1.0)

    def test_adaptive_requires_policy(self):
        with pytest.raises(ValueError, match="policy"):
            HelloProtocol("adaptive")

    def test_policy_requires_adaptive_mode(self):
        with pytest.raises(ValueError, match="adaptive"):
            HelloProtocol("periodic", policy={"policy": "fixed"})


class TestHelloFromConfig:
    def test_unknown_keys_list_valid_keys(self):
        with pytest.raises(ValueError) as error:
            hello_from_config({"mode": "periodic", "intervall": 2.0})
        message = str(error.value)
        assert "intervall" in message
        assert "interval" in message

    def test_adaptive_without_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            hello_from_config({"mode": "adaptive"})

    def test_adaptive_top_level_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            hello_from_config(
                {"mode": "adaptive", "policy": "fixed", "interval": 2.0}
            )

    def test_policy_string_shorthand(self):
        hello = hello_from_config(
            {"mode": "adaptive", "policy": "churn-feedback"}
        )
        assert isinstance(hello.policy, ChurnFeedbackPolicy)

    def test_policy_outside_adaptive_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):
            hello_from_config({"mode": "periodic", "policy": "fixed"})
        with pytest.raises(ValueError, match="adaptive"):
            hello_from_config({"mode": "event", "window": 2.0})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="dict"):
            hello_from_config("adaptive")


def _run_traced(path, beacon, seed=3, duration=6.0, n=40):
    """One traced run with reset id counters, for byte comparisons."""
    Simulation._instance_ids = itertools.count()
    spans._span_ids = itertools.count()
    params = _params(n=n)
    with JsonlTracer(path) as tracer:
        sim = _sim(params, seed=seed, tracer=tracer)
        if beacon is None:
            sim.attach(HelloProtocol("periodic", interval=1.0))
        else:
            sim.attach(hello_from_config(beacon))
        sim.run(duration=duration, warmup=1.0)
    return path


class TestFixedPolicyBitIdentity:
    def test_traces_are_byte_identical_and_compare_clean(self, tmp_path, capsys):
        periodic = _run_traced(tmp_path / "periodic.jsonl", None)
        fixed = _run_traced(
            tmp_path / "fixed.jsonl",
            {"mode": "adaptive", "policy": {"policy": "fixed", "interval": 1.0}},
        )
        assert periodic.read_bytes() == fixed.read_bytes()
        # The compare gate agrees: self-diff within threshold, exit 0.
        code = main(["compare", str(periodic), str(fixed)])
        out = capsys.readouterr().out
        assert code == 0
        assert "WITHIN THRESHOLD" in out

    def test_fixed_policy_emits_no_control_telemetry(self):
        tracer = CollectingTracer()
        params = _params()
        sim = _sim(params, seed=2, tracer=tracer)
        hello = sim.attach(
            hello_from_config(
                {"mode": "adaptive", "policy": {"policy": "fixed"}}
            )
        )
        sim.run(duration=4.0, warmup=0.5)
        assert hello.signals is None
        assert tracer.of("control_window") == []


class TestAdaptiveTelemetry:
    def test_control_window_events_and_heterogeneous_timers(self):
        tracer = CollectingTracer()
        params = _params(vf=0.1)
        sim = _sim(params, seed=2, tracer=tracer)
        hello = sim.attach(
            hello_from_config(
                {"mode": "adaptive", "policy": "staleness-bounded"}
            )
        )
        sim.run(duration=6.0, warmup=1.0)
        windows = tracer.of("control_window")
        assert windows
        record = windows[-1]
        assert record["policy"] == "staleness-bounded"
        assert record["beacons"] > 0
        assert record["min_interval"] <= record["mean_interval"]
        assert record["mean_interval"] <= record["max_interval"]
        assert record["staleness"] >= 0.0
        # Per-node advertised timeouts actually diverge.
        assert len(np.unique(hello._advertised_timeout)) > 1

    def test_adaptive_hellos_attributed_to_policy_cause(self):
        tracer = CollectingTracer()
        params = _params(vf=0.1)
        sim = _sim(params, seed=4, tracer=tracer)
        sim.attach(
            hello_from_config(
                {"mode": "adaptive", "policy": "churn-feedback"}
            )
        )
        attach_attribution(sim)
        sim.run(duration=4.0, warmup=0.5)
        records = tracer.of("attribution")
        assert records
        causes = records[-1]["causes"]["hello"]
        assert CAUSE_CHURN_HELLO in causes
        assert causes[CAUSE_CHURN_HELLO]["messages"] > 0
        # Every adaptive HELLO carries the policy cause — nothing leaks
        # into the periodic bucket — and the ledger reconciles bitwise.
        assert CAUSE_PERIODIC_HELLO not in causes
        assert records[-1]["reconciled"] is True

    def test_beacon_interval_histograms_exported(self):
        registry = MetricsRegistry()
        params = _params(vf=0.1)
        with observe(registry=registry):
            sim = _sim(params, seed=2)
            sim.attach(
                hello_from_config(
                    {"mode": "adaptive", "policy": "staleness-bounded"}
                )
            )
            sim.run(duration=5.0, warmup=1.0)
        names = {metric.name for metric in registry.collect()}
        assert {
            "beacon_interval",
            "neighbor_staleness",
            "detection_latency",
        } <= names
        interval_hist = next(
            metric
            for metric in registry.collect()
            if metric.name == "beacon_interval"
        )
        assert interval_hist.count > 0
        assert interval_hist.labels["policy"] == "staleness-bounded"


class TestCompareControlRows:
    def test_digest_and_compare_carry_control_aggregates(self, tmp_path, capsys):
        trace = _run_traced(
            tmp_path / "adaptive.jsonl",
            {"mode": "adaptive", "policy": "staleness-bounded"},
        )
        digest = TraceDigest.from_trace(trace)
        assert digest.control
        assert digest.control["mean_interval"] > 0.0
        report = compare_traces(trace, trace)
        control_rows = [
            row for row in report.rows if row.metric.startswith("control:")
        ]
        assert control_rows
        assert all(not row.gating for row in control_rows)
        # Self-compare stays clean: control rows never gate.
        code = main(["compare", str(trace), str(trace)])
        assert code == 0
        assert "control:" in capsys.readouterr().out

    def test_report_renders_adaptive_beaconing_section(self, tmp_path, capsys):
        trace = _run_traced(
            tmp_path / "adaptive.jsonl",
            {"mode": "adaptive", "policy": "churn-feedback"},
        )
        out_file = tmp_path / "report.md"
        code = main(["report", str(trace), "--out", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert "### Adaptive beaconing" in text
        assert "churn-feedback" in text
        assert "Engine schema version" in text


# ---------------------------------------------------------------------------
# Scenario and sweep integration
# ---------------------------------------------------------------------------
class TestScenarioBeaconBlock:
    def _config(self, beacon):
        from repro.scenario import ScenarioConfig

        return ScenarioConfig(
            name="t",
            n_nodes=30,
            range_fraction=0.2,
            velocity_fraction=0.05,
            beacon=beacon,
            duration=2.0,
            warmup=0.5,
        )

    def test_beacon_block_round_trips(self):
        from repro.scenario import ScenarioConfig

        config = self._config(
            {"mode": "adaptive", "policy": {"policy": "staleness-bounded"}}
        )
        rebuilt = ScenarioConfig.from_dict(config.to_dict())
        assert rebuilt.beacon == config.beacon

    def test_invalid_beacon_block_rejected_at_load(self):
        with pytest.raises(ValueError, match="valid policies"):
            self._config({"mode": "adaptive", "policy": "psychic"})
        with pytest.raises(ValueError, match="valid keys"):
            self._config({"mode": "periodic", "intervall": 1.0})

    def test_run_scenario_with_adaptive_beacon(self):
        from repro.scenario import run_scenario

        report = run_scenario(
            self._config({"mode": "adaptive", "policy": "analytic-rate"})
        )
        assert report.frequencies["hello"] > 0.0


class TestSweepBeaconPlumbing:
    def test_jobs_does_not_change_adaptive_sweep_results(self):
        from repro.analysis.sweep import measure_point

        params = _params(n=30)
        beacon = {"mode": "adaptive", "policy": "staleness-bounded"}
        kwargs = dict(
            parameter_value=params.velocity,
            seeds=2,
            duration=2.0,
            warmup=0.5,
            beacon=beacon,
        )
        serial = measure_point(params, jobs=1, **kwargs)
        parallel = measure_point(params, jobs=2, **kwargs)
        assert serial.measured == parallel.measured
        assert serial.measured_head_ratio == parallel.measured_head_ratio

    def test_beacon_spec_changes_store_identity(self):
        from repro.analysis.parallel import task_identity
        from repro.analysis.sweep import _run_once_task
        from repro.clustering import LowestIdClustering
        from repro.store import fingerprint

        params = _params(n=30)
        classic = (params, 0, 2.0, 0.5, 1.0, LowestIdClustering())
        beacon = classic + (
            {"mode": "adaptive", "policy": "churn-feedback"},
        )
        key_classic = fingerprint(task_identity(_run_once_task, classic))
        key_beacon = fingerprint(task_identity(_run_once_task, beacon))
        assert key_classic != key_beacon

    def test_invalid_beacon_rejected_before_running(self):
        from repro.analysis.sweep import measure_point

        with pytest.raises(ValueError, match="valid policies"):
            measure_point(
                _params(n=30),
                parameter_value=1.0,
                seeds=1,
                duration=1.0,
                warmup=0.2,
                beacon={"mode": "adaptive", "policy": "psychic"},
            )


class TestCliBeaconPolicy:
    def test_sweep_accepts_beacon_policy_flag(self, tmp_path, capsys):
        params = _params(n=30)
        velocity = f"{params.velocity:.6f}"
        code = main(
            [
                "sweep",
                "velocity",
                velocity,
                "--n",
                "30",
                "--seeds",
                "1",
                "--duration",
                "2.0",
                "--beacon-policy",
                "staleness-bounded",
            ]
        )
        assert code == 0
        assert "f_hello" in capsys.readouterr().out

    def test_unknown_beacon_policy_is_usage_error(self, capsys):
        code = main(
            [
                "sweep",
                "velocity",
                "0.05",
                "--beacon-policy",
                "psychic",
            ]
        )
        assert code == 2
        assert "valid policies" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Frontier experiment plumbing (no simulation runs)
# ---------------------------------------------------------------------------
class TestFrontierTable:
    def test_dominance_verdicts(self):
        from repro.experiments.adaptive_beaconing import frontier_table

        params = _params(n=30)
        roster = (("fixed", {}), ("smart", {}), ("wasteful", {}))
        measured = {
            (0, "fixed"): {"f_hello": 1.0, "staleness": 4.0},
            (0, "smart"): {"f_hello": 0.9, "staleness": 3.9},
            (0, "wasteful"): {"f_hello": 1.2, "staleness": 3.0},
        }
        table = frontier_table(
            [0.05], [params], measured, roster, "frontier"
        )
        verdicts = {row[1]: row[5] for row in table.rows}
        assert verdicts == {
            "fixed": "baseline",
            "smart": "dominates",
            "wasteful": "-",
        }
        assert any("dominance: smart@v/a=0.050" in note for note in table.notes)

    def test_registered_in_experiment_registry(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "adaptive-beaconing" in EXPERIMENTS
