"""Tests for the content-addressed result store (repro.store).

The contract under test: fingerprints are stable across processes and
sensitive to every result-bearing input (including the engine schema
version); the codec round-trips results exactly; the on-disk store is
atomic under concurrent writers, corruption-tolerant (quarantine, never
crash), and integrates with ``run_tasks`` so cached and fresh runs are
indistinguishable for any ``jobs`` value.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np
import pytest

from repro.analysis.parallel import run_tasks
from repro.analysis.sweep import SweepPoint, SweepResult, measure_point
from repro.core.params import NetworkParameters
from repro.store import (
    MISS,
    CodecError,
    FingerprintError,
    ResultStore,
    canonicalize,
    current_store,
    decode,
    default_store_root,
    encode,
    fingerprint,
    resolve_store_root,
    task_identity,
    use_store,
)


def _square_task(task):
    return task * task


def _tuple_task(task):
    return {"value": task, "pair": (task, task + 1)}


def _tiny_params():
    return NetworkParameters.from_fractions(
        n_nodes=40, range_fraction=0.15, velocity_fraction=0.05
    )


@dataclass(frozen=True)
class _Sample:
    name: str
    values: tuple


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_across_calls(self):
        identity = task_identity(_square_task, (1, 2.5, "x"))
        assert fingerprint(identity) == fingerprint(identity)

    def test_distinct_tasks_distinct_keys(self):
        a = fingerprint(task_identity(_square_task, 3))
        b = fingerprint(task_identity(_square_task, 4))
        c = fingerprint(task_identity(_tuple_task, 3))
        assert len({a, b, c}) == 3

    def test_dataclass_fields_participate(self):
        a = canonicalize(_Sample("a", (1, 2)))
        b = canonicalize(_Sample("b", (1, 2)))
        assert a != b
        assert a["__dataclass__"].endswith("_Sample")

    def test_dict_key_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_numpy_values_canonicalize(self):
        doc = canonicalize({"x": np.float64(1.5), "a": np.arange(3)})
        assert fingerprint(doc) == fingerprint(json.loads(json.dumps(doc)))

    def test_engine_schema_version_invalidates(self, monkeypatch):
        before = fingerprint(task_identity(_square_task, 3))
        import repro.sim.engine as engine

        monkeypatch.setattr(engine, "ENGINE_SCHEMA_VERSION", 999)
        after = fingerprint(task_identity(_square_task, 3))
        assert before != after

    def test_unpicklable_payload_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(FingerprintError):
            canonicalize(rng)

    def test_local_function_rejected(self):
        def local(task):
            return task

        with pytest.raises(FingerprintError):
            task_identity(local, 1)


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            3,
            2.5,
            "text",
            [1, 2, 3],
            (1, (2, "x")),
            {"a": [1.0, (2, 3)]},
            {1: "non-string key"},
            {"__t__": "marker collision"},
        ],
    )
    def test_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_tuples_stay_tuples(self):
        decoded = decode(encode({"pair": (1, 2)}))
        assert isinstance(decoded["pair"], tuple)

    def test_dataclass_round_trip(self):
        sample = _Sample("x", (1, 2.5))
        decoded = decode(encode(sample))
        assert decoded == sample
        assert isinstance(decoded, _Sample)

    def test_numpy_round_trip(self):
        decoded = decode(encode({"s": np.float64(1.5), "a": np.arange(4)}))
        assert decoded["s"] == 1.5
        np.testing.assert_array_equal(decoded["a"], np.arange(4))

    def test_json_safe(self):
        encoded = encode({"pair": (1, 2), "sample": _Sample("x", (3,))})
        assert decode(json.loads(json.dumps(encoded))) == {
            "pair": (1, 2),
            "sample": _Sample("x", (3,)),
        }

    def test_unknown_marker_rejected(self):
        with pytest.raises(CodecError):
            decode({"__dc__": "not.a.real:Class", "fields": {}})


# ----------------------------------------------------------------------
# Disk store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_get_absent_is_miss(self, tmp_path):
        store = ResultStore(root=tmp_path)
        assert store.get("0" * 64) is MISS

    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(root=tmp_path)
        identity = task_identity(_tuple_task, 3)
        key = fingerprint(identity)
        store.put(key, identity, _tuple_task(3), elapsed=0.5)
        assert store.get(key) == _tuple_task(3)
        assert store.verify() == []

    def test_corrupt_record_quarantined(self, tmp_path):
        store = ResultStore(root=tmp_path)
        identity = task_identity(_square_task, 3)
        key = fingerprint(identity)
        store.put(key, identity, 9, elapsed=0.0)
        store.record_path(key).write_text("{ not json")
        assert store.get(key) is MISS
        assert not store.record_path(key).exists()
        assert store.stats()["quarantined"] == 1
        # The store recovers: the key can be written and read again.
        store.put(key, identity, 9, elapsed=0.0)
        assert store.get(key) == 9

    def test_wrong_schema_quarantined(self, tmp_path):
        store = ResultStore(root=tmp_path)
        identity = task_identity(_square_task, 3)
        key = fingerprint(identity)
        store.put(key, identity, 9, elapsed=0.0)
        record = json.loads(store.record_path(key).read_text())
        record["schema"] = 999
        store.record_path(key).write_text(json.dumps(record))
        assert store.get(key) is MISS
        assert store.stats()["quarantined"] == 1

    def test_verify_flags_tampered_result(self, tmp_path):
        store = ResultStore(root=tmp_path)
        identity = task_identity(_square_task, 3)
        key = fingerprint(identity)
        store.put(key, identity, 9, elapsed=0.0)
        record = json.loads(store.record_path(key).read_text())
        record["fingerprint"]["task"] = 4  # no longer hashes to key
        store.record_path(key).write_text(json.dumps(record))
        problems = store.verify()
        assert len(problems) == 1
        assert "re-hashes" in problems[0][1]

    def test_gc_size_evicts_oldest_first(self, tmp_path):
        store = ResultStore(root=tmp_path)
        keys = []
        for value in range(3):
            identity = task_identity(_square_task, value)
            key = fingerprint(identity)
            store.put(key, identity, value * value, elapsed=0.0)
            keys.append(key)
            mtime = 1_000_000 + value
            os.utime(store.record_path(key), (mtime, mtime))
        largest = max(
            store.record_path(key).stat().st_size for key in keys
        )
        removed, freed = store.gc(max_size=largest)
        assert removed == 2
        assert freed > 0
        assert store.get(keys[2]) == 4  # newest survives
        assert store.get(keys[0]) is MISS

    def test_gc_dry_run_removes_nothing(self, tmp_path):
        store = ResultStore(root=tmp_path)
        identity = task_identity(_square_task, 1)
        key = fingerprint(identity)
        store.put(key, identity, 1, elapsed=0.0)
        removed, _ = store.gc(max_size=0, dry_run=True)
        assert removed == 1
        assert store.get(key) == 1

    def test_resolve_root_precedence(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_MANET_STORE", raising=False)
        assert resolve_store_root(tmp_path) == tmp_path
        monkeypatch.setenv("REPRO_MANET_STORE", str(tmp_path / "env"))
        assert resolve_store_root() == tmp_path / "env"
        assert resolve_store_root(tmp_path / "flag") == tmp_path / "flag"
        monkeypatch.delenv("REPRO_MANET_STORE")
        assert resolve_store_root() == default_store_root()

    def test_ambient_context(self, tmp_path):
        assert current_store() is None
        store = ResultStore(root=tmp_path)
        with use_store(store):
            assert current_store() is store
        assert current_store() is None


def _concurrent_put(root):
    """Worker for the concurrency test: write the same key."""
    store = ResultStore(root=root)
    identity = task_identity(_tuple_task, 7)
    key = fingerprint(identity)
    store.put(key, identity, _tuple_task(7), elapsed=0.1)
    return key


class TestConcurrency:
    def test_two_processes_same_key(self, tmp_path):
        with ProcessPoolExecutor(max_workers=2) as pool:
            keys = list(pool.map(_concurrent_put, [tmp_path, tmp_path]))
        assert keys[0] == keys[1]
        store = ResultStore(root=tmp_path)
        assert store.get(keys[0]) == _tuple_task(7)
        assert store.stats()["records"] == 1
        assert store.verify() == []
        # No leaked tmp files from either writer.
        leftovers = [
            p
            for p in store.objects_dir.rglob("*")
            if p.is_file() and p.suffix == ".tmp"
        ]
        assert leftovers == []


# ----------------------------------------------------------------------
# run_tasks integration
# ----------------------------------------------------------------------
class TestRunTasksIntegration:
    def test_second_run_hits(self, tmp_path):
        store = ResultStore(root=tmp_path)
        fresh = run_tasks(_square_task, [2, 3, 4], store=store)
        assert (store.hits, store.misses) == (0, 3)
        cached = run_tasks(_square_task, [2, 3, 4], store=store)
        assert cached == fresh == [4, 9, 16]
        assert (store.hits, store.misses) == (3, 3)

    def test_jobs_population_determinism(self, tmp_path):
        serial = ResultStore(root=tmp_path / "serial")
        parallel = ResultStore(root=tmp_path / "parallel")
        tasks = [1, 2, 3, 4]
        assert run_tasks(
            _tuple_task, tasks, jobs=1, store=serial
        ) == run_tasks(_tuple_task, tasks, jobs=2, store=parallel)
        serial_keys = [p.name for p in serial.iter_record_paths()]
        parallel_keys = [p.name for p in parallel.iter_record_paths()]
        assert serial_keys == parallel_keys
        assert len(serial_keys) == len(tasks)
        # A jobs=2-populated store serves a serial run entirely from
        # cache, byte-identical results included.
        replay = run_tasks(_tuple_task, tasks, store=parallel)
        assert replay == run_tasks(_tuple_task, tasks, jobs=1, store=serial)
        assert parallel.hits == len(tasks)

    def test_refresh_recomputes_and_rewrites(self, tmp_path):
        store = ResultStore(root=tmp_path)
        run_tasks(_square_task, [5], store=store)
        refreshing = ResultStore(root=tmp_path, refresh=True)
        assert run_tasks(_square_task, [5], store=refreshing) == [25]
        assert (refreshing.hits, refreshing.misses) == (0, 1)
        assert refreshing.writes == 1

    def test_uncacheable_task_still_runs(self, tmp_path):
        store = ResultStore(root=tmp_path)
        rng = np.random.default_rng(0)  # not fingerprintable
        [value] = run_tasks(lambda task: 1.0, [rng], store=store)
        assert value == 1.0
        assert store.stats()["records"] == 0

    def test_ambient_store_used(self, tmp_path):
        store = ResultStore(root=tmp_path)
        with use_store(store):
            run_tasks(_square_task, [6], jobs=2)
        assert (store.misses, store.writes) == (1, 1)

    def test_corrupt_record_re_simulated(self, tmp_path):
        store = ResultStore(root=tmp_path)
        run_tasks(_square_task, [8], store=store)
        [path] = list(store.iter_record_paths())
        path.write_text("garbage")
        assert run_tasks(_square_task, [8], store=store) == [64]
        assert store.stats()["quarantined"] == 1
        assert store.get(fingerprint(task_identity(_square_task, 8))) == 64

    def test_measure_point_cached_equals_fresh(self, tmp_path):
        store = ResultStore(root=tmp_path)
        params = _tiny_params()
        kwargs = dict(seeds=2, duration=1.0, warmup=0.2, store=store)
        fresh = measure_point(params, params.velocity, **kwargs)
        cached = measure_point(params, params.velocity, **kwargs)
        assert cached == fresh
        assert store.hits == store.misses == 2


# ----------------------------------------------------------------------
# Sweep type serialization
# ----------------------------------------------------------------------
class TestSweepSerialization:
    def _point(self):
        params = _tiny_params()
        return SweepPoint(
            parameter_value=params.velocity,
            params=params,
            measured_head_ratio=0.25,
            measured={"f_hello": 1.0, "f_cluster": 0.5, "f_route": 0.1},
            predicted={"f_hello": 1.1, "f_cluster": 0.4, "f_route": 0.2},
            seeds=2,
        )

    def test_point_round_trip(self):
        point = self._point()
        rebuilt = SweepPoint.from_dict(point.to_dict())
        assert rebuilt == point
        assert rebuilt.params == point.params

    def test_result_round_trip_via_json(self):
        result = SweepResult(parameter="velocity", points=[self._point()])
        data = json.loads(json.dumps(result.to_dict()))
        assert SweepResult.from_dict(data) == result
