"""Tests for Claim 2 — link change rates (repro.core.linkdynamics)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.degree import expected_degree, infinite_plane_degree
from repro.core.linkdynamics import (
    LinkRates,
    bcv_link_break_rate,
    bcv_link_change_rate,
    bcv_link_generation_rate,
    bcv_rates_from_params,
    cv_link_break_rate,
    cv_link_change_rate,
    cv_link_generation_rate,
    mean_relative_speed,
)
from repro.mobility import ConstantVelocityModel
from repro.spatial import Boundary, SquareRegion, compute_adjacency, diff_adjacency


class TestRelativeSpeed:
    def test_closed_form(self):
        assert mean_relative_speed(1.0) == pytest.approx(4.0 / math.pi)

    def test_linear_in_speed(self):
        assert mean_relative_speed(3.0) == pytest.approx(3 * mean_relative_speed(1.0))

    def test_zero_speed(self):
        assert mean_relative_speed(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mean_relative_speed(-1.0)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        theta = rng.uniform(0, 2 * math.pi, 200_000)
        empirical = np.mean(2.0 * np.abs(np.sin(theta / 2.0)))
        assert mean_relative_speed(1.0) == pytest.approx(empirical, rel=0.01)


class TestCvRates:
    def test_flux_identity(self):
        # lambda_gen = rho * 2r * E[v_rel] = 8 rho r v / pi.
        rho, r, v = 100.0, 0.1, 0.5
        assert cv_link_generation_rate(rho, r, v) == pytest.approx(
            rho * 2.0 * r * mean_relative_speed(v)
        )

    def test_break_equals_generation(self):
        assert cv_link_break_rate(10.0, 0.1, 1.0) == cv_link_generation_rate(
            10.0, 0.1, 1.0
        )

    def test_change_is_sum(self):
        assert cv_link_change_rate(10.0, 0.1, 1.0) == pytest.approx(
            2.0 * cv_link_generation_rate(10.0, 0.1, 1.0)
        )

    def test_vectorized_range(self):
        rs = np.array([0.1, 0.2, 0.3])
        np.testing.assert_allclose(
            cv_link_change_rate(10.0, rs, 1.0),
            [cv_link_change_rate(10.0, float(r), 1.0) for r in rs],
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cv_link_generation_rate(0.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            cv_link_generation_rate(1.0, 0.1, -1.0)

    def test_matches_torus_simulation(self):
        """The load-bearing empirical check: Claim 2's constant."""
        n, r, v = 400, 0.05, 0.02
        region = SquareRegion(1.0, Boundary.TORUS)
        model = ConstantVelocityModel(v)
        model.reset(n, region, 11)
        dt, steps = 0.05, 400
        adjacency = compute_adjacency(region, model.positions, r)
        changes = 0
        for _ in range(steps):
            new = compute_adjacency(region, model.advance(dt), r)
            changes += diff_adjacency(adjacency, new).change_count
            adjacency = new
        measured = 2 * changes / (n * steps * dt)
        assert measured == pytest.approx(
            cv_link_change_rate(float(n), r, v), rel=0.05
        )


class TestBcvRates:
    def test_eqn3_formula(self):
        d, r, v = 12.0, 0.1, 0.5
        assert bcv_link_change_rate(d, r, v) == pytest.approx(
            16.0 * d * v / (math.pi**2 * r)
        )

    def test_reduces_to_cv_with_plane_degree(self):
        # Substituting d = rho pi r^2 recovers the CV rate.
        rho, r, v = 77.0, 0.2, 0.3
        d = infinite_plane_degree(rho, r)
        assert bcv_link_change_rate(d, r, v) == pytest.approx(
            cv_link_change_rate(rho, r, v)
        )

    def test_generation_break_split(self):
        d, r, v = 9.0, 0.1, 1.0
        gen = bcv_link_generation_rate(d, r, v)
        brk = bcv_link_break_rate(d, r, v)
        assert gen == brk
        assert gen + brk == pytest.approx(bcv_link_change_rate(d, r, v))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            bcv_link_change_rate(5.0, 0.0, 1.0)


class TestLinkLifetime:
    def test_closed_form(self):
        from repro.core.linkdynamics import expected_link_lifetime

        assert expected_link_lifetime(0.1, 0.05) == pytest.approx(
            math.pi**2 * 0.1 / (8 * 0.05)
        )

    def test_static_links_live_forever(self):
        from repro.core.linkdynamics import expected_link_lifetime

        assert expected_link_lifetime(0.1, 0.0) == float("inf")

    def test_invalid_inputs(self):
        from repro.core.linkdynamics import expected_link_lifetime

        with pytest.raises(ValueError):
            expected_link_lifetime(0.0, 0.1)
        with pytest.raises(ValueError):
            expected_link_lifetime(0.1, -0.1)

    def test_littles_law_identity(self):
        """lifetime == standing links / break rate (density cancels)."""
        from repro.core.degree import infinite_plane_degree
        from repro.core.linkdynamics import (
            cv_link_break_rate,
            expected_link_lifetime,
        )

        rho, r, v = 123.0, 0.07, 0.4
        lifetime = infinite_plane_degree(rho, r) / cv_link_break_rate(rho, r, v)
        assert expected_link_lifetime(r, v) == pytest.approx(lifetime)

    def test_matches_torus_simulation(self):
        """Mean measured link lifetime matches pi^2 r / (8 v)."""
        from repro.core.linkdynamics import expected_link_lifetime
        from repro.spatial import compute_adjacency, diff_adjacency

        n, r, v = 300, 0.08, 0.04
        region = SquareRegion(1.0, Boundary.TORUS)
        model = ConstantVelocityModel(v)
        model.reset(n, region, 3)
        dt = 0.02 * r / v
        adjacency = compute_adjacency(region, model.positions, r)
        born: dict[tuple[int, int], float] = {}
        lifetimes: list[float] = []
        time = 0.0
        for _ in range(1500):
            new = compute_adjacency(region, model.advance(dt), r)
            events = diff_adjacency(adjacency, new)
            time += dt
            for u, v_ in events.generated:
                born[(int(u), int(v_))] = time
            for u, v_ in events.broken:
                start = born.pop((int(u), int(v_)), None)
                if start is not None:
                    lifetimes.append(time - start)
            adjacency = new
        # Completed lifetimes only: slightly biased short, so compare
        # loosely (the bias shrinks with observation length).
        measured = float(np.mean(lifetimes))
        predicted = expected_link_lifetime(r, v)
        assert measured == pytest.approx(predicted, rel=0.2)


class TestLinkRatesBundle:
    def test_fields_consistent(self, params):
        rates = bcv_rates_from_params(params)
        assert isinstance(rates, LinkRates)
        assert rates.degree == pytest.approx(
            float(expected_degree(params.n_nodes, params.density, params.tx_range))
        )
        assert rates.generation == pytest.approx(rates.breakage)
        assert rates.change == pytest.approx(2 * rates.generation)

    def test_boundary_factor_below_one(self, params):
        rates = bcv_rates_from_params(params)
        assert 0.0 < rates.boundary_factor < 1.0
