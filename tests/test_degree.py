"""Tests for Claim 1 — expected degree (repro.core.degree)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degree import (
    degree_from_params,
    expected_degree,
    expected_degree_eqn1,
    expected_head_degree,
    infinite_plane_degree,
)
from repro.spatial import Boundary, SquareRegion


class TestExpectedDegree:
    def test_zero_range(self):
        assert expected_degree(100, 100.0, 0.0) == 0.0

    def test_full_range_connects_everyone(self):
        # r = sqrt(2) a reaches the whole square.
        side = math.sqrt(100 / 100.0)
        assert expected_degree(100, 100.0, math.sqrt(2) * side) == pytest.approx(99.0)

    def test_matches_eqn1_below_side(self):
        for r in (0.05, 0.2, 0.5, 0.9):
            exact = expected_degree(400, 400.0, r)
            printed = expected_degree_eqn1(400, 400.0, r)
            assert exact == pytest.approx(printed, rel=1e-12)

    def test_eqn1_vectorized(self):
        rs = np.linspace(0.01, 0.5, 7)
        np.testing.assert_allclose(
            expected_degree(400, 400.0, rs),
            expected_degree_eqn1(400, 400.0, rs),
            rtol=1e-12,
        )

    def test_monotone_in_range(self):
        rs = np.linspace(0.0, 1.0, 30)
        degrees = expected_degree(400, 400.0, rs)
        assert np.all(np.diff(degrees) >= 0)

    def test_below_infinite_plane(self):
        # Boundary truncation can only reduce the neighbor count.
        for r in (0.1, 0.3, 0.6):
            bounded = expected_degree(400, 400.0, r)
            unbounded = infinite_plane_degree(400.0, r)
            assert bounded < unbounded

    def test_tends_to_plane_degree_for_small_r(self):
        # d / (rho pi r^2) -> (N-1)/N as r -> 0.
        n, rho, r = 1000, 1000.0, 1e-3
        ratio = expected_degree(n, rho, r) / infinite_plane_degree(rho, r)
        assert ratio == pytest.approx((n - 1) / n, rel=1e-3)

    def test_matches_monte_carlo(self):
        region = SquareRegion(1.0, Boundary.OPEN)
        n, r = 300, 0.2
        degrees = []
        for seed in range(10):
            positions = region.uniform_positions(n, seed)
            degrees.append(region.adjacency(positions, r).sum(axis=1).mean())
        assert expected_degree(n, float(n), r) == pytest.approx(
            float(np.mean(degrees)), rel=0.03
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_degree(0, 1.0, 0.1)
        with pytest.raises(ValueError):
            expected_degree(10, -1.0, 0.1)
        with pytest.raises(ValueError):
            expected_degree(10, 1.0, -0.1)


class TestHeadDegree:
    def test_scales_with_head_count(self):
        # d' uses the head population N*P in place of N.
        full = expected_degree(400, 400.0, 0.2)
        heads = expected_head_degree(400, 400.0, 0.2, 0.25)
        assert heads == pytest.approx(full * (400 * 0.25 - 1) / 399, rel=1e-12)

    def test_all_heads_equals_degree(self):
        assert expected_head_degree(400, 400.0, 0.2, 1.0) == pytest.approx(
            expected_degree(400, 400.0, 0.2)
        )

    def test_clamps_at_zero(self):
        # Fewer than one expected head leaves no head neighbors.
        assert expected_head_degree(10, 10.0, 0.2, 0.05) == 0.0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            expected_head_degree(100, 100.0, 0.1, 0.0)
        with pytest.raises(ValueError):
            expected_head_degree(100, 100.0, 0.1, 1.5)


class TestPlaneDegree:
    def test_formula(self):
        assert infinite_plane_degree(50.0, 0.1) == pytest.approx(
            50.0 * math.pi * 0.01
        )

    def test_vectorized(self):
        rs = np.array([0.1, 0.2])
        np.testing.assert_allclose(
            infinite_plane_degree(2.0, rs), 2.0 * math.pi * rs**2
        )

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            infinite_plane_degree(0.0, 0.1)


def test_degree_from_params(params):
    assert degree_from_params(params) == pytest.approx(
        float(expected_degree(params.n_nodes, params.density, params.tx_range))
    )


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=2, max_value=2000),
    st.floats(min_value=0.1, max_value=1000.0),
    st.floats(min_value=1e-4, max_value=0.99),
)
def test_degree_bounds_property(n, rho, fraction):
    """0 <= d <= N-1 for any r inside the square."""
    side = math.sqrt(n / rho)
    degree = expected_degree(n, rho, fraction * side)
    assert -1e-9 <= degree <= n - 1 + 1e-9
