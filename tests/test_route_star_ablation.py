"""Tests for the star-topology ROUTE ablation.

The star reading isolates the paper's one irreducible approximation:
member–head links are counted exactly (``N(1-P)``), so the remaining
analysis/simulation gap is only the cluster-size weighting effect and
stays within a modest constant — unlike the "all links" reading whose
member–member estimate degrades with cluster size.
"""

from __future__ import annotations

import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.core import overhead as oh
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.routing import IntraClusterRoutingProtocol
from repro.sim import Simulation


def _run(topology: str, seed: int = 2):
    params = NetworkParameters.from_fractions(
        n_nodes=150, range_fraction=0.2, velocity_fraction=0.05
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    intra = IntraClusterRoutingProtocol(maintenance, topology=topology)
    sim.attach(intra)
    sim.attach(maintenance)
    stats = sim.run(duration=20.0, warmup=2.0)
    return params, stats.per_node_frequency("route"), maintenance.head_ratio()


class TestStarAblation:
    def test_invalid_topology_rejected(self):
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        with pytest.raises(ValueError, match="topology"):
            IntraClusterRoutingProtocol(maintenance, topology="mesh")

    def test_invalid_links_rejected(self):
        params = NetworkParameters.from_fractions(
            n_nodes=50, range_fraction=0.2, velocity_fraction=0.05
        )
        with pytest.raises(ValueError, match="links"):
            oh.route_frequency(params, 0.3, links="bogus")

    def test_member_head_analysis_below_all(self):
        params = NetworkParameters.from_fractions(
            n_nodes=100, range_fraction=0.2, velocity_fraction=0.05
        )
        star = oh.route_frequency(params, 0.2, links="member_head")
        all_links = oh.route_frequency(params, 0.2, links="all")
        assert star < all_links

    def test_star_simulation_below_all(self):
        _, star_rate, _ = _run("star")
        _, all_rate, _ = _run("all")
        assert star_rate < all_rate

    def test_star_agreement_is_tight(self):
        """The star counting agrees within the size-skew factor (<2x),
        much tighter than the all-links reading at the same point."""
        params, star_rate, head_ratio = _run("star")
        predicted = oh.route_frequency(params, head_ratio, links="member_head")
        assert predicted <= star_rate <= 2.0 * predicted

    def test_star_is_lower_bound(self):
        """The analysis never exceeds the measured star rate (lower
        bound semantics preserved)."""
        for seed in (2, 3):
            params, star_rate, head_ratio = _run("star", seed=seed)
            predicted = oh.route_frequency(
                params, head_ratio, links="member_head"
            )
            assert predicted <= star_rate * 1.05
