"""Tests for the clustering algorithm implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    DmacClustering,
    HighestConnectivityClustering,
    LinkedClusterArchitecture,
    LowestIdClustering,
    MaxMinDCluster,
    MobDHopClustering,
    Role,
    check_properties,
    relative_mobility,
)
from repro.spatial import Boundary, SquareRegion


def _random_topology(n=150, r=0.14, seed=0):
    region = SquareRegion(1.0, Boundary.OPEN)
    positions = region.uniform_positions(n, seed)
    return region.adjacency(positions, r), positions


class TestLowestId:
    def test_lowest_id_in_component_is_head(self):
        adjacency, _ = _random_topology(seed=1)
        state = LowestIdClustering().form(adjacency)
        # Node 0 has the globally lowest id: always a head.
        assert state.is_head(0)

    def test_satisfies_p1_p2(self):
        for seed in range(5):
            adjacency, _ = _random_topology(seed=seed)
            state = LowestIdClustering().form(adjacency)
            assert check_properties(state, adjacency).ok

    def test_member_joins_lowest_id_head(self):
        # Star: center 2 with leaves 0, 1, 3 — 0 and 1 not adjacent.
        adjacency = np.zeros((4, 4), dtype=bool)
        for leaf in (0, 1, 3):
            adjacency[2, leaf] = adjacency[leaf, 2] = True
        state = LowestIdClustering().form(adjacency)
        # 0 is head; 2 joins 0; 1 and 3 have no head neighbor -> heads.
        assert state.is_head(0)
        assert state.head_of[2] == 0
        assert state.is_head(1) and state.is_head(3)

    def test_custom_ids_change_outcome(self):
        adjacency = np.zeros((2, 2), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        default = LowestIdClustering().form(adjacency)
        assert default.is_head(0)
        swapped = LowestIdClustering(ids=np.array([5, 1])).form(adjacency)
        assert swapped.is_head(1)
        assert swapped.head_of[0] == 1

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            LowestIdClustering(ids=np.array([1, 1, 2]))

    def test_id_count_mismatch(self):
        algorithm = LowestIdClustering(ids=np.arange(5))
        with pytest.raises(ValueError):
            algorithm.form(np.zeros((3, 3), dtype=bool))

    def test_matches_paper_head_criterion(self):
        """A node is a head iff every lower-id closed-neighbor is a
        member of another cluster (the Section 5 criterion)."""
        adjacency, _ = _random_topology(n=80, seed=3)
        state = LowestIdClustering().form(adjacency)
        for node in range(80):
            lower_neighbors = [
                v for v in np.flatnonzero(adjacency[node]) if v < node
            ]
            if state.is_head(node):
                for neighbor in lower_neighbors:
                    assert state.roles[neighbor] == Role.MEMBER
                    assert state.head_of[neighbor] != node


class TestHighestConnectivity:
    def test_satisfies_p1_p2(self):
        for seed in range(5):
            adjacency, _ = _random_topology(seed=seed)
            state = HighestConnectivityClustering().form(adjacency)
            assert check_properties(state, adjacency).ok

    def test_max_degree_node_is_head(self):
        adjacency, _ = _random_topology(seed=7)
        degrees = adjacency.sum(axis=1)
        best = int(np.argmax(degrees))
        state = HighestConnectivityClustering().form(adjacency)
        assert state.is_head(best)

    def test_star_center_wins(self):
        adjacency = np.zeros((5, 5), dtype=bool)
        adjacency[4, :4] = adjacency[:4, 4] = True
        state = HighestConnectivityClustering().form(adjacency)
        assert state.is_head(4)
        assert state.cluster_count() == 1

    def test_degree_ties_break_by_lower_id(self):
        # Two disconnected edges: all degrees 1; lower ids head.
        adjacency = np.zeros((4, 4), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        adjacency[2, 3] = adjacency[3, 2] = True
        state = HighestConnectivityClustering().form(adjacency)
        assert state.is_head(0) and state.is_head(2)


class TestDmac:
    def test_satisfies_p1_p2(self):
        adjacency, _ = _random_topology(seed=2)
        state = DmacClustering(seed=3).form(adjacency)
        assert check_properties(state, adjacency).ok

    def test_highest_weight_is_head(self):
        adjacency = np.zeros((3, 3), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        adjacency[1, 2] = adjacency[2, 1] = True
        weights = np.array([0.1, 0.9, 0.5])
        state = DmacClustering(weights=weights).form(adjacency)
        assert state.is_head(1)
        assert state.head_of[0] == 1 and state.head_of[2] == 1

    def test_weight_count_mismatch(self):
        algorithm = DmacClustering(weights=np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            algorithm.form(np.zeros((3, 3), dtype=bool))

    def test_deterministic_for_seed(self):
        adjacency, _ = _random_topology(seed=4)
        a = DmacClustering(seed=9).form(adjacency)
        b = DmacClustering(seed=9).form(adjacency)
        np.testing.assert_array_equal(a.roles, b.roles)
        np.testing.assert_array_equal(a.head_of, b.head_of)


class TestMaxMin:
    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            MaxMinDCluster(0)

    def test_everyone_assigned(self):
        adjacency, _ = _random_topology(seed=5)
        state = MaxMinDCluster(2).form(adjacency)
        assert np.all(state.head_of >= 0)
        assert not np.any(state.roles == Role.UNASSIGNED)

    def test_members_within_d_hops(self):
        import networkx as nx

        adjacency, _ = _random_topology(n=100, seed=6)
        d = 2
        state = MaxMinDCluster(d).form(adjacency)
        graph = nx.from_numpy_array(adjacency)
        for node in range(100):
            head = int(state.head_of[node])
            if head != node:
                assert nx.shortest_path_length(graph, node, head) <= d

    def test_fewer_clusters_than_one_hop(self):
        adjacency, _ = _random_topology(n=200, r=0.1, seed=7)
        one_hop = LowestIdClustering().form(adjacency).cluster_count()
        two_hop = MaxMinDCluster(2).form(adjacency).cluster_count()
        assert two_hop <= one_hop

    def test_isolated_node_is_its_own_head(self):
        adjacency = np.zeros((4, 4), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        state = MaxMinDCluster(2).form(adjacency)
        assert state.is_head(2) and state.is_head(3)


class TestLca:
    def test_highest_id_is_head(self):
        adjacency, _ = _random_topology(seed=8)
        state = LinkedClusterArchitecture().form(adjacency)
        assert state.is_head(len(adjacency) - 1)

    def test_everyone_assigned_and_members_adjacent(self):
        adjacency, _ = _random_topology(seed=9)
        state = LinkedClusterArchitecture().form(adjacency)
        violations = check_properties(state, adjacency)
        # LCA guarantees P2-style affiliation but not P1.
        assert not violations.unaffiliated
        assert not violations.detached_members
        assert not violations.dangling_members

    def test_rule2_orphan_rescue(self):
        # Path 0-1-2: node 2 heads (highest); node 0's neighborhood max
        # is 1, so 1 must head too (rule 2), else 0 would be orphaned.
        adjacency = np.zeros((3, 3), dtype=bool)
        adjacency[0, 1] = adjacency[1, 0] = True
        adjacency[1, 2] = adjacency[2, 1] = True
        state = LinkedClusterArchitecture().form(adjacency)
        assert state.is_head(2)
        assert state.is_head(1)
        assert state.head_of[0] == 1


class TestMobDHop:
    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            MobDHopClustering(0)

    def test_everyone_assigned(self):
        adjacency, _ = _random_topology(seed=10)
        state = MobDHopClustering(2).form(adjacency)
        assert np.all(state.head_of >= 0)

    def test_members_within_d_hops(self):
        import networkx as nx

        adjacency, _ = _random_topology(n=100, seed=11)
        state = MobDHopClustering(3).form(adjacency)
        graph = nx.from_numpy_array(adjacency)
        for node in range(100):
            head = int(state.head_of[node])
            if head != node:
                assert nx.shortest_path_length(graph, node, head) <= 3

    def test_stable_nodes_become_heads(self):
        # Two snapshots: nodes 0,1 static; node 2 moves fast near them.
        adjacency = np.ones((3, 3), dtype=bool)
        np.fill_diagonal(adjacency, False)
        snapshots = [
            np.array([[0.0, 0.0], [0.05, 0.0], [0.1, 0.0]]),
            np.array([[0.0, 0.0], [0.05, 0.0], [0.4, 0.0]]),
        ]
        state = MobDHopClustering(1, snapshots=snapshots).form(adjacency)
        # The most stable node (0 or 1) heads; both 0 and 1 have equal
        # stability... node 2's movement makes it least stable.
        head = int(state.heads()[0])
        assert head in (0, 1)

    def test_merge_threshold_blocks_unstable_links(self):
        adjacency = np.ones((2, 2), dtype=bool)
        np.fill_diagonal(adjacency, False)
        snapshots = [
            np.array([[0.0, 0.0], [0.1, 0.0]]),
            np.array([[0.0, 0.0], [0.5, 0.0]]),
        ]
        state = MobDHopClustering(
            1, snapshots=snapshots, merge_threshold=0.1
        ).form(adjacency)
        # Relative mobility 0.4 exceeds the threshold: two singletons.
        assert state.cluster_count() == 2

    def test_relative_mobility_requires_two_snapshots(self):
        with pytest.raises(ValueError):
            relative_mobility([np.zeros((2, 2))], np.ones((2, 2), dtype=bool))

    def test_relative_mobility_values(self):
        adjacency = np.ones((2, 2), dtype=bool)
        np.fill_diagonal(adjacency, False)
        snapshots = [
            np.array([[0.0, 0.0], [0.1, 0.0]]),
            np.array([[0.0, 0.0], [0.3, 0.0]]),
            np.array([[0.0, 0.0], [0.2, 0.0]]),
        ]
        mobility = relative_mobility(snapshots, adjacency)
        # Mean |distance change| = (0.2 + 0.1) / 2.
        assert mobility[0, 1] == pytest.approx(0.15)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=60),
    st.floats(min_value=0.05, max_value=0.5),
    st.integers(min_value=0, max_value=500),
)
def test_one_hop_algorithms_always_valid_property(n, r, seed):
    """LID/HCC/DMAC formations satisfy P1+P2 on any random topology."""
    region = SquareRegion(1.0, Boundary.OPEN)
    positions = region.uniform_positions(n, seed)
    adjacency = region.adjacency(positions, r)
    for algorithm in (
        LowestIdClustering(),
        HighestConnectivityClustering(),
        DmacClustering(seed=seed),
    ):
        state = algorithm.form(adjacency)
        assert check_properties(state, adjacency).ok
