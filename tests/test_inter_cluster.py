"""Tests for backbone route discovery (repro.routing.inter_cluster)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering, Role
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.routing import discover_route, is_gateway
from repro.sim import Simulation


@pytest.fixture
def clustered_sim():
    params = NetworkParameters.from_fractions(
        n_nodes=120, range_fraction=0.18, velocity_fraction=0.0
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=21
    )
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    sim.attach(maintenance)
    return sim, maintenance


class TestGateway:
    def test_head_is_not_gateway(self, clustered_sim):
        sim, maintenance = clustered_sim
        state = maintenance.state
        head = int(state.heads()[0])
        assert not is_gateway(state, sim.adjacency, head)

    def test_member_with_foreign_neighbor_is_gateway(self, clustered_sim):
        sim, maintenance = clustered_sim
        state = maintenance.state
        found = False
        for node in np.flatnonzero(state.roles == Role.MEMBER):
            neighbors = sim.neighbors_of(int(node))
            foreign = [
                v for v in neighbors if state.head_of[v] != state.head_of[node]
            ]
            expected = bool(foreign)
            assert is_gateway(state, sim.adjacency, int(node)) == expected
            found = found or expected
        assert found, "topology should contain at least one gateway"


class TestDiscovery:
    def test_trivial_self_route(self, clustered_sim):
        sim, maintenance = clustered_sim
        result = discover_route(sim, maintenance.state, 5, 5, record_stats=False)
        assert result.path == [5]
        assert result.total_transmissions == 0

    def test_path_is_valid_walk(self, clustered_sim):
        sim, maintenance = clustered_sim
        result = discover_route(sim, maintenance.state, 0, 60, record_stats=False)
        if not result.found:
            pytest.skip("0 and 60 in different components")
        path = result.path
        assert path[0] == 0 and path[-1] == 60
        for u, v in zip(path, path[1:]):
            assert sim.has_link(u, v)

    def test_interior_members_do_not_forward(self, clustered_sim):
        sim, maintenance = clustered_sim
        state = maintenance.state
        result = discover_route(sim, maintenance.state, 0, 60, record_stats=False)
        if not result.found:
            pytest.skip("unreachable pair")
        # Intermediate path nodes must be heads, gateways, or endpoints.
        for node in result.path[1:-1]:
            assert (
                state.roles[node] == Role.HEAD
                or is_gateway(state, sim.adjacency, node)
            )

    def test_fewer_transmissions_than_full_flood(self, clustered_sim):
        sim, maintenance = clustered_sim
        result = discover_route(sim, maintenance.state, 0, 99, record_stats=False)
        if not result.found:
            pytest.skip("unreachable pair")
        # A full flood would cost ~N transmissions; the backbone flood
        # must be strictly cheaper (that is its purpose).
        assert result.rreq_transmissions < sim.n_nodes

    def test_unreachable_destination(self, clustered_sim):
        sim, maintenance = clustered_sim
        # Disconnect node 7 completely.
        sim.adjacency[7, :] = False
        sim.adjacency[:, 7] = False
        result = discover_route(sim, maintenance.state, 0, 7, record_stats=False)
        assert not result.found
        assert result.path is None
        assert result.rrep_transmissions == 0

    def test_stats_recording(self, clustered_sim):
        sim, maintenance = clustered_sim
        sim.stats.start_measuring()
        result = discover_route(sim, maintenance.state, 0, 60)
        if result.found:
            assert sim.stats.message_count("route_discovery") == (
                result.total_transmissions
            )
            expected_bits = (
                result.total_transmissions * sim.params.messages.p_route
            )
            assert sim.stats.bit_count("route_discovery") == pytest.approx(
                expected_bits
            )

    def test_rrep_hops_match_path(self, clustered_sim):
        sim, maintenance = clustered_sim
        result = discover_route(sim, maintenance.state, 3, 90, record_stats=False)
        if result.found:
            assert result.rrep_transmissions == len(result.path) - 1


class TestBroadcastFlood:
    def test_blind_flood_reaches_component(self, clustered_sim):
        import networkx as nx
        from repro.routing import broadcast_flood

        sim, _ = clustered_sim
        graph = nx.from_numpy_array(sim.adjacency)
        component = nx.node_connected_component(graph, 0)
        result = broadcast_flood(sim, 0, state=None, record_stats=False)
        assert result.reached == len(component)
        # Blind flooding: every reached node retransmits.
        assert result.transmissions == result.reached
        assert result.savings == 0

    def test_backbone_flood_same_reach_fewer_transmissions(self, clustered_sim):
        from repro.routing import broadcast_flood

        sim, maintenance = clustered_sim
        blind = broadcast_flood(sim, 0, state=None, record_stats=False)
        clustered = broadcast_flood(
            sim, 0, state=maintenance.state, record_stats=False
        )
        assert clustered.reached == blind.reached
        assert clustered.transmissions < blind.transmissions
        assert clustered.savings > 0

    def test_stats_recorded(self, clustered_sim):
        from repro.routing import broadcast_flood

        sim, maintenance = clustered_sim
        sim.stats.start_measuring()
        result = broadcast_flood(sim, 0, state=maintenance.state)
        assert sim.stats.message_count("broadcast") == result.transmissions
