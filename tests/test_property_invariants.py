"""Cross-cutting property-based tests of the system's core invariants.

Each property here spans multiple modules — these are the contracts the
whole reproduction stands on:

* the simulator's event stream exactly reconstructs the adjacency;
* reactive maintenance keeps P1/P2 under arbitrary admissible events;
* the overhead model is dimensionally consistent under unit rescaling;
* the LID fixpoint and the degree analysis compose sanely.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering import (
    ClusterMaintenanceProtocol,
    LowestIdClustering,
    check_properties,
)
from repro.core import overhead as oh
from repro.core.degree import expected_degree
from repro.core.lid_analysis import lid_head_probability_exact
from repro.core.params import MessageSizes, NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.sim import Simulation
from repro.spatial import Boundary, SquareRegion, compute_adjacency, diff_adjacency


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=10, max_value=80),
    st.floats(min_value=0.08, max_value=0.35),
    st.floats(min_value=0.01, max_value=0.15),
    st.integers(min_value=0, max_value=10_000),
)
def test_event_stream_reconstructs_adjacency(n, rf, vf, seed):
    """Applying the link events to the old adjacency gives the new one."""
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=rf, velocity_fraction=vf
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    reconstructed = sim.adjacency.copy()
    for _ in range(5):
        events = sim.step()
        for u, v in events.broken:
            reconstructed[u, v] = reconstructed[v, u] = False
        for u, v in events.generated:
            reconstructed[u, v] = reconstructed[v, u] = True
        np.testing.assert_array_equal(reconstructed, sim.adjacency)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=15, max_value=60),
    st.floats(min_value=0.1, max_value=0.3),
    st.integers(min_value=0, max_value=10_000),
)
def test_maintenance_invariant_under_mobility(n, rf, seed):
    """P1 and P2 hold after every simulation step, for any topology."""
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=rf, velocity_fraction=0.08
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    sim.attach(maintenance)
    for _ in range(15):
        sim.step()
        violations = check_properties(maintenance.state, sim.adjacency)
        assert violations.ok, violations.describe()


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0.05, max_value=1.0),
    st.floats(min_value=1.5, max_value=100.0),
)
def test_overhead_model_scale_invariance(p_head, scale):
    """Rescaling length and time units consistently leaves the
    dimensionless frequency * time products unchanged.

    Frequencies are per unit time: if distances scale by ``s`` and
    speeds scale by ``s`` (same time unit), every frequency must be
    invariant — the model may depend only on the dimensionless ratios
    r/a and v/(a/t).
    """
    base = NetworkParameters.from_fractions(
        n_nodes=150, range_fraction=0.2, velocity_fraction=0.05
    )
    scaled = NetworkParameters(
        n_nodes=base.n_nodes,
        density=base.density / scale**2,
        tx_range=base.tx_range * scale,
        velocity=base.velocity * scale,
        messages=base.messages,
    )
    assert oh.hello_frequency(scaled) == pytest.approx(
        oh.hello_frequency(base), rel=1e-9
    )
    assert oh.cluster_frequency(scaled, p_head) == pytest.approx(
        oh.cluster_frequency(base, p_head), rel=1e-9
    )
    assert oh.route_frequency(scaled, p_head) == pytest.approx(
        oh.route_frequency(base, p_head), rel=1e-9
    )


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=10, max_value=2000),
    st.floats(min_value=0.02, max_value=0.6),
)
def test_lid_pipeline_composes(n, rf):
    """degree -> fixpoint -> cluster count stays within [1, N]."""
    degree = float(expected_degree(n, float(n), rf))
    p = float(lid_head_probability_exact(degree))
    clusters = n * p
    assert 0.9 <= clusters <= n + 1e-9
    # Expected cluster size m = 1/P never exceeds the closed
    # neighborhood the head can serve... plus slack for the fixpoint's
    # independence approximation.
    assert 1.0 <= 1.0 / p


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=16.0, max_value=4096.0),
    st.floats(min_value=16.0, max_value=4096.0),
    st.floats(min_value=16.0, max_value=4096.0),
    st.floats(min_value=0.05, max_value=0.95),
)
def test_overhead_linear_in_message_sizes(p_hello, p_cluster, p_route, p_head):
    """Overheads are exactly frequency x size, per category."""
    params = NetworkParameters.from_fractions(
        n_nodes=100,
        range_fraction=0.15,
        velocity_fraction=0.05,
        messages=MessageSizes(
            p_hello=p_hello, p_cluster=p_cluster, p_route=p_route
        ),
    )
    assert oh.hello_overhead(params) == pytest.approx(
        p_hello * oh.hello_frequency(params)
    )
    assert oh.cluster_overhead(params, p_head) == pytest.approx(
        p_cluster * oh.cluster_frequency(params, p_head)
    )
    assert oh.route_overhead(params, p_head) == pytest.approx(
        p_route * oh.route_frequency(params, p_head)
    )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=5, max_value=100),
    st.floats(min_value=0.05, max_value=0.7),
    st.integers(min_value=0, max_value=1000),
    st.sampled_from([Boundary.TORUS, Boundary.OPEN]),
)
def test_adjacency_diff_roundtrip(n, r, seed, boundary):
    """diff(a, b) applied to a yields b, for arbitrary snapshots."""
    region = SquareRegion(1.0, boundary)
    a_positions = region.uniform_positions(n, seed)
    b_positions = region.uniform_positions(n, seed + 1)
    a = compute_adjacency(region, a_positions, r)
    b = compute_adjacency(region, b_positions, r)
    events = diff_adjacency(a, b)
    rebuilt = a.copy()
    for u, v in events.broken:
        rebuilt[u, v] = rebuilt[v, u] = False
    for u, v in events.generated:
        rebuilt[u, v] = rebuilt[v, u] = True
    np.testing.assert_array_equal(rebuilt, b)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.01, max_value=0.99))
def test_route_frequency_monotone_in_head_ratio(p_head):
    """More heads (smaller clusters) -> strictly less ROUTE traffic."""
    params = NetworkParameters.from_fractions(
        n_nodes=100, range_fraction=0.2, velocity_fraction=0.05
    )
    smaller = oh.route_frequency(params, min(p_head * 1.1, 1.0))
    larger = oh.route_frequency(params, p_head)
    assert smaller <= larger + 1e-12
