"""The paper's central abstraction: the algorithm enters only through P.

Section 3 derives the CLUSTER/ROUTE overheads for "a general one-hop
clustering algorithm", with the cluster-head ratio ``P`` as the single
algorithm-dependent quantity.  If that abstraction is sound, plugging
each algorithm's *measured* ``P`` into the same formulas must predict
each algorithm's measured rates equally well.  These tests verify the
claim across LID, HCC and DMAC.
"""

from __future__ import annotations

import pytest

from repro.analysis import measure_point
from repro.analysis.series import relative_error
from repro.clustering import (
    DmacClustering,
    HighestConnectivityClustering,
    LowestIdClustering,
)
from repro.core.params import NetworkParameters

ALGORITHMS = {
    "lid": LowestIdClustering,
    "hcc": HighestConnectivityClustering,
    "dmac": DmacClustering,
}


@pytest.fixture(scope="module")
def per_algorithm_points():
    params = NetworkParameters.from_fractions(
        n_nodes=100, range_fraction=0.16, velocity_fraction=0.05
    )
    return {
        name: measure_point(
            params,
            0.16,
            seeds=2,
            duration=12.0,
            warmup=1.5,
            algorithm=factory(),
        )
        for name, factory in ALGORITHMS.items()
    }


class TestPAbstraction:
    @pytest.mark.parametrize("name", list(ALGORITHMS))
    def test_cluster_rate_predicted_from_measured_p(
        self, per_algorithm_points, name
    ):
        point = per_algorithm_points[name]
        error = relative_error(
            point.measured["f_cluster"], point.predicted["f_cluster"]
        )
        assert error < 0.4, (name, point.measured, point.predicted)

    @pytest.mark.parametrize("name", list(ALGORITHMS))
    def test_hello_rate_algorithm_independent(
        self, per_algorithm_points, name
    ):
        # HELLO does not depend on clustering at all.
        point = per_algorithm_points[name]
        error = relative_error(
            point.measured["f_hello"], point.predicted["f_hello"]
        )
        assert error < 0.3, name

    def test_prediction_quality_uniform_across_algorithms(
        self, per_algorithm_points
    ):
        """The fit must not be LID-specific: the spread of prediction
        errors across algorithms stays small."""
        errors = [
            relative_error(
                point.measured["f_cluster"], point.predicted["f_cluster"]
            )
            for point in per_algorithm_points.values()
        ]
        assert max(errors) - min(errors) < 0.3

    def test_route_rate_lower_bound_for_all(self, per_algorithm_points):
        for name, point in per_algorithm_points.items():
            assert (
                point.measured["f_route"] > 0.6 * point.predicted["f_route"]
            ), name

    def test_measured_p_similar_across_one_hop_family(
        self, per_algorithm_points
    ):
        """One-hop algorithms on the same topology produce similar P
        (they all elect ~one head per disk)."""
        ratios = [
            point.measured_head_ratio
            for point in per_algorithm_points.values()
        ]
        assert max(ratios) / min(ratios) < 1.5
