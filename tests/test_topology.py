"""Tests for clustered-topology structural metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.topology import (
    StructureSummary,
    backbone_graph,
    backbone_nodes,
    backbone_reachability,
    cluster_diameters,
    gateway_nodes,
    head_separations,
    summarize_structure,
)
from repro.clustering import (
    ClusterState,
    LowestIdClustering,
    MaxMinDCluster,
    Role,
)
from repro.spatial import Boundary, SquareRegion


@pytest.fixture
def clustered():
    region = SquareRegion(1.0, Boundary.OPEN)
    positions = region.uniform_positions(150, 5)
    adjacency = region.adjacency(positions, 0.15)
    state = LowestIdClustering().form(adjacency)
    return region, positions, adjacency, state


class TestGateways:
    def test_gateways_are_members_with_foreign_neighbors(self, clustered):
        _, _, adjacency, state = clustered
        for node in gateway_nodes(state, adjacency):
            assert state.roles[node] == Role.MEMBER
            neighbors = np.flatnonzero(adjacency[node])
            assert np.any(state.head_of[neighbors] != state.head_of[node])

    def test_backbone_is_heads_union_gateways(self, clustered):
        _, _, adjacency, state = clustered
        backbone = set(backbone_nodes(state, adjacency).tolist())
        heads = set(state.heads().tolist())
        gateways = set(gateway_nodes(state, adjacency).tolist())
        assert backbone == heads | gateways


class TestBackboneGraph:
    def test_graph_nodes_match(self, clustered):
        _, _, adjacency, state = clustered
        graph = backbone_graph(state, adjacency)
        assert set(graph.nodes) == set(backbone_nodes(state, adjacency).tolist())

    def test_edges_are_real_links(self, clustered):
        _, _, adjacency, state = clustered
        graph = backbone_graph(state, adjacency)
        for u, v in graph.edges:
            assert adjacency[u, v]

    def test_reachability_near_one_for_dense_lid(self, clustered):
        _, _, adjacency, state = clustered
        value = backbone_reachability(state, adjacency, samples=150, rng=0)
        assert value > 0.95

    def test_reachability_nan_for_isolated(self):
        adjacency = np.zeros((4, 4), dtype=bool)
        state = LowestIdClustering().form(adjacency)
        import math

        assert math.isnan(
            backbone_reachability(state, adjacency, samples=20, rng=0)
        )


class TestDiametersAndSeparation:
    def test_one_hop_diameters_at_most_two(self, clustered):
        _, _, adjacency, state = clustered
        diameters = cluster_diameters(state, adjacency)
        assert np.all(diameters <= 2.0)

    def test_dhop_diameters_can_exceed_two(self):
        region = SquareRegion(1.0, Boundary.OPEN)
        positions = region.uniform_positions(200, 1)
        adjacency = region.adjacency(positions, 0.1)
        state = MaxMinDCluster(2).form(adjacency)
        diameters = cluster_diameters(state, adjacency)
        finite = diameters[np.isfinite(diameters)]
        assert np.max(finite) > 2.0

    def test_p1_implies_head_separation_beyond_range(self, clustered):
        region, positions, _, state = clustered
        separations = head_separations(state, positions, region)
        assert np.min(separations) > 0.15  # the transmission range

    def test_single_head_no_separations(self):
        adjacency = np.ones((3, 3), dtype=bool)
        np.fill_diagonal(adjacency, False)
        state = LowestIdClustering().form(adjacency)
        region = SquareRegion(1.0, Boundary.OPEN)
        positions = region.uniform_positions(3, 0)
        assert len(head_separations(state, positions, region)) == 0


class TestSummary:
    def test_summary_fields_consistent(self, clustered):
        region, positions, adjacency, state = clustered
        summary = summarize_structure(
            state, adjacency, positions, region, samples=100, rng=1
        )
        assert isinstance(summary, StructureSummary)
        assert summary.n_nodes == 150
        assert summary.cluster_count == state.cluster_count()
        assert summary.head_ratio == pytest.approx(state.head_ratio())
        assert summary.backbone_ratio >= summary.gateway_ratio
        assert summary.backbone_ratio >= summary.head_ratio
        assert summary.backbone_ratio <= summary.gateway_ratio + summary.head_ratio + 1e-12
        assert summary.max_cluster_diameter <= 2.0
        assert summary.min_head_separation > 0.15
