"""Tests for the link-distance distribution (repro.core.geometry)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.integrate import simpson

from repro.core.geometry import (
    SQRT2,
    circle_square_overlap_fraction,
    connectivity_probability,
    link_distance_cdf,
    link_distance_mean,
    link_distance_moment,
    link_distance_pdf,
    sample_link_distances,
)


class TestCdfAnchors:
    def test_zero_at_origin(self):
        assert link_distance_cdf(0.0) == 0.0

    def test_one_at_diagonal(self):
        assert link_distance_cdf(SQRT2) == pytest.approx(1.0)

    def test_one_beyond_support(self):
        assert link_distance_cdf(5.0) == 1.0

    def test_negative_distance_zero(self):
        assert link_distance_cdf(-0.5) == 0.0

    def test_paper_polynomial_branch(self):
        # F(s) = pi s^2 - 8/3 s^3 + s^4/2 on [0, 1].
        s = 0.37
        expected = math.pi * s**2 - (8.0 / 3.0) * s**3 + 0.5 * s**4
        assert link_distance_cdf(s) == pytest.approx(expected)

    def test_branch_continuity_at_one(self):
        below = link_distance_cdf(1.0 - 1e-9)
        above = link_distance_cdf(1.0 + 1e-9)
        assert below == pytest.approx(above, abs=1e-6)

    def test_value_at_one(self):
        # F(1) = pi - 13/6.
        assert link_distance_cdf(1.0) == pytest.approx(math.pi - 13.0 / 6.0)

    def test_side_scaling(self):
        # F(x; side=D) == F(x/D; side=1).
        assert link_distance_cdf(30.0, side=100.0) == pytest.approx(
            link_distance_cdf(0.3)
        )

    def test_invalid_side_raises(self):
        with pytest.raises(ValueError):
            link_distance_cdf(0.5, side=0.0)

    def test_vectorized_matches_scalar(self):
        xs = np.linspace(0.0, SQRT2, 17)
        vector = link_distance_cdf(xs)
        scalars = np.array([link_distance_cdf(float(x)) for x in xs])
        np.testing.assert_allclose(vector, scalars)


class TestPdf:
    def test_integrates_to_one(self):
        s = np.linspace(0.0, SQRT2, 4001)
        assert simpson(link_distance_pdf(s), x=s) == pytest.approx(1.0, abs=1e-6)

    def test_nonnegative(self):
        s = np.linspace(0.0, SQRT2, 1001)
        assert np.all(link_distance_pdf(s) >= -1e-12)

    def test_zero_outside_support(self):
        assert link_distance_pdf(-0.1) == 0.0
        assert link_distance_pdf(SQRT2 + 0.1) == 0.0

    def test_is_derivative_of_cdf(self):
        for s in (0.2, 0.7, 1.1, 1.3):
            h = 1e-6
            numeric = (link_distance_cdf(s + h) - link_distance_cdf(s - h)) / (2 * h)
            assert link_distance_pdf(s) == pytest.approx(numeric, rel=1e-4)

    def test_density_scales_with_side(self):
        # pdf integrates to one in absolute units for any side.
        side = 7.0
        x = np.linspace(0.0, SQRT2 * side, 4001)
        assert simpson(link_distance_pdf(x, side=side), x=x) == pytest.approx(
            1.0, abs=1e-6
        )


class TestMoments:
    def test_mean_closed_form(self):
        expected = (2.0 + SQRT2 + 5.0 * math.asinh(1.0)) / 15.0
        assert link_distance_mean() == pytest.approx(expected)

    def test_mean_matches_quadrature(self):
        assert link_distance_moment(1) == pytest.approx(
            link_distance_mean(), rel=1e-6
        )

    def test_second_moment_known_value(self):
        # E[L^2] = 1/3 for the unit square.
        assert link_distance_moment(2) == pytest.approx(1.0 / 3.0, rel=1e-6)

    def test_zeroth_moment_is_one(self):
        assert link_distance_moment(0) == pytest.approx(1.0, rel=1e-6)

    def test_mean_scales_linearly(self):
        assert link_distance_mean(3.0) == pytest.approx(3.0 * link_distance_mean())

    def test_invalid_moment_raises(self):
        with pytest.raises(ValueError):
            link_distance_moment(-1)


class TestEmpirical:
    def test_cdf_matches_sampling(self):
        samples = sample_link_distances(100_000, rng=7)
        for threshold in (0.2, 0.5, 0.9, 1.2):
            empirical = float(np.mean(samples <= threshold))
            assert link_distance_cdf(threshold) == pytest.approx(
                empirical, abs=0.01
            )

    def test_sampling_respects_side(self):
        samples = sample_link_distances(10_000, side=5.0, rng=3)
        assert samples.max() <= 5.0 * SQRT2
        assert samples.mean() == pytest.approx(link_distance_mean(5.0), rel=0.05)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            sample_link_distances(-1)


class TestConnectivityProbability:
    def test_alias_of_cdf(self):
        assert connectivity_probability(0.3, 1.0) == link_distance_cdf(0.3)

    def test_monotone_in_range(self):
        values = [connectivity_probability(r, 1.0) for r in np.linspace(0, 1.4, 20)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestOverlapFraction:
    def test_tiny_radius_no_truncation(self):
        assert circle_square_overlap_fraction(1e-4, 1.0) == pytest.approx(
            1.0, abs=1e-3
        )

    def test_larger_radius_truncates(self):
        fraction = circle_square_overlap_fraction(0.4, 1.0, num=64)
        assert 0.4 < fraction < 1.0

    def test_matches_cdf_identity(self):
        # E[overlap area]/a^2 equals F(r): average disk overlap equals
        # the connectivity probability.
        r = 0.25
        fraction = circle_square_overlap_fraction(r, 1.0, num=128)
        expected = link_distance_cdf(r) / (math.pi * r * r)
        assert fraction == pytest.approx(expected, rel=0.01)


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=0.0, max_value=SQRT2))
def test_cdf_in_unit_interval(s):
    value = link_distance_cdf(s)
    assert 0.0 <= value <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=SQRT2),
    st.floats(min_value=0.0, max_value=SQRT2),
)
def test_cdf_monotone(a, b):
    lo, hi = min(a, b), max(a, b)
    assert link_distance_cdf(lo) <= link_distance_cdf(hi) + 1e-12


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=1e-3, max_value=SQRT2 - 1e-3))
def test_pdf_nonnegative_everywhere(s):
    assert link_distance_pdf(s) >= -1e-12
