"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import experiment_ids


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_quick(self):
        args = build_parser().parse_args(["run", "fig1", "--quick"])
        assert args.experiment == "fig1"
        assert args.quick

    def test_model_defaults(self):
        args = build_parser().parse_args(["model"])
        assert args.n == 400
        assert args.rf == pytest.approx(0.15)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_telemetry_flags(self):
        args = build_parser().parse_args(
            [
                "run",
                "fig1",
                "--quick",
                "--trace",
                "t.jsonl",
                "--trace-step-every",
                "5",
                "--metrics-json",
                "m.json",
                "--progress",
                "-vv",
            ]
        )
        assert args.trace == "t.jsonl"
        assert args.trace_step_every == 5
        assert args.metrics_json == "m.json"
        assert args.progress
        assert args.verbose == 2

    def test_simulate_accepts_telemetry_flags(self):
        args = build_parser().parse_args(
            ["simulate", "s.json", "--trace", "t.jsonl", "--log-level", "info"]
        )
        assert args.trace == "t.jsonl"
        assert args.log_level == "info"

    def test_trace_summary_command(self):
        args = build_parser().parse_args(["trace-summary", "t.jsonl", "--json"])
        assert args.command == "trace-summary"
        assert args.file == "t.jsonl"
        assert args.json


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == experiment_ids()

    def test_model_output(self, capsys):
        assert main(["model", "--n", "200", "--rf", "0.1", "--vf", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "LID head ratio" in out
        assert "O_total" in out
        assert "f_hello" in out

    def test_model_full_table_flag(self, capsys):
        main(["model", "--full-table"])
        full = capsys.readouterr().out
        main(["model"])
        entry = capsys.readouterr().out

        def route_line(text):
            for line in text.splitlines():
                if line.startswith("O_route"):
                    return float(line.split("=")[1].split()[0])
            raise AssertionError("no O_route line")

        assert route_line(full) > route_line(entry)

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "fig4a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "figX"])

    def test_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "velocity",
                "0.02,0.05",
                "--n",
                "40",
                "--seeds",
                "1",
                "--duration",
                "3.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep of velocity" in out
        assert "f_hello sim" in out

    def test_sweep_bad_values(self, capsys):
        assert main(["sweep", "velocity", "abc"]) == 2
        assert main(["sweep", "velocity", ","]) == 2

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "temperature", "1,2"])

    def test_run_with_csv_export(self, capsys, tmp_path):
        target = tmp_path / "csv"
        assert main(["run", "fig4b", "--quick", "--csv", str(target)]) == 0
        csv_file = target / "fig4b.csv"
        assert csv_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert header.startswith("d+1,")

    def test_run_with_jobs(self, capsys):
        assert main(["run", "claim1", "--quick", "--jobs", "2"]) == 0
        assert "Claim 1" in capsys.readouterr().out

    def test_sweep_with_jobs(self, capsys):
        code = main(
            [
                "sweep",
                "tx_range",
                "0.15",
                "--n",
                "40",
                "--seeds",
                "2",
                "--duration",
                "2.0",
                "--jobs",
                "2",
            ]
        )
        assert code == 0
        assert "Sweep of tx_range" in capsys.readouterr().out

    def test_bench_command(self, capsys, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--sizes",
                "60",
                "--steps",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        modes = {row["mode"] for row in payload["step_benchmarks"]}
        assert modes == {"edge-engine", "dense-baseline"}
        for row in payload["step_benchmarks"]:
            assert row["steps_per_sec"] > 0
            assert row["peak_rss_kb"] > 0
            assert set(row["phases_s"]) >= {
                "mobility",
                "adjacency",
                "link_diff",
            }
        assert payload["speedup_vs_dense"]["60"] is not None

    def test_bench_bad_sizes(self, capsys):
        assert main(["bench", "--sizes", "abc"]) == 2
