"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import experiment_ids


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_quick(self):
        args = build_parser().parse_args(["run", "fig1", "--quick"])
        assert args.experiment == "fig1"
        assert args.quick

    def test_model_defaults(self):
        args = build_parser().parse_args(["model"])
        assert args.n == 400
        assert args.rf == pytest.approx(0.15)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_telemetry_flags(self):
        args = build_parser().parse_args(
            [
                "run",
                "fig1",
                "--quick",
                "--trace",
                "t.jsonl",
                "--trace-step-every",
                "5",
                "--metrics-json",
                "m.json",
                "--progress",
                "-vv",
            ]
        )
        assert args.trace == "t.jsonl"
        assert args.trace_step_every == 5
        assert args.metrics_json == "m.json"
        assert args.progress
        assert args.verbose == 2

    def test_simulate_accepts_telemetry_flags(self):
        args = build_parser().parse_args(
            ["simulate", "s.json", "--trace", "t.jsonl", "--log-level", "info"]
        )
        assert args.trace == "t.jsonl"
        assert args.log_level == "info"

    def test_trace_summary_command(self):
        args = build_parser().parse_args(["trace-summary", "t.jsonl", "--json"])
        assert args.command == "trace-summary"
        assert args.file == "t.jsonl"
        assert args.json


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == experiment_ids()

    def test_model_output(self, capsys):
        assert main(["model", "--n", "200", "--rf", "0.1", "--vf", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "LID head ratio" in out
        assert "O_total" in out
        assert "f_hello" in out

    def test_model_full_table_flag(self, capsys):
        main(["model", "--full-table"])
        full = capsys.readouterr().out
        main(["model"])
        entry = capsys.readouterr().out

        def route_line(text):
            for line in text.splitlines():
                if line.startswith("O_route"):
                    return float(line.split("=")[1].split()[0])
            raise AssertionError("no O_route line")

        assert route_line(full) > route_line(entry)

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "fig4a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "figX"])

    def test_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "velocity",
                "0.02,0.05",
                "--n",
                "40",
                "--seeds",
                "1",
                "--duration",
                "3.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep of velocity" in out
        assert "f_hello sim" in out

    def test_sweep_bad_values(self, capsys):
        assert main(["sweep", "velocity", "abc"]) == 2
        assert main(["sweep", "velocity", ","]) == 2

    def test_sweep_rejects_unknown_parameter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "temperature", "1,2"])

    def test_run_with_csv_export(self, capsys, tmp_path):
        target = tmp_path / "csv"
        assert main(["run", "fig4b", "--quick", "--csv", str(target)]) == 0
        csv_file = target / "fig4b.csv"
        assert csv_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert header.startswith("d+1,")

    def test_run_with_jobs(self, capsys):
        assert main(["run", "claim1", "--quick", "--jobs", "2"]) == 0
        assert "Claim 1" in capsys.readouterr().out

    def test_sweep_with_jobs(self, capsys):
        code = main(
            [
                "sweep",
                "tx_range",
                "0.15",
                "--n",
                "40",
                "--seeds",
                "2",
                "--duration",
                "2.0",
                "--jobs",
                "2",
            ]
        )
        assert code == 0
        assert "Sweep of tx_range" in capsys.readouterr().out

    def test_bench_command(self, capsys, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--sizes",
                "60",
                "--steps",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        modes = {row["mode"] for row in payload["step_benchmarks"]}
        assert modes == {
            "edge-engine",
            "incremental-engine",
            "dense-baseline",
        }
        for row in payload["step_benchmarks"]:
            assert row["steps_per_sec"] > 0
            assert row["peak_rss_kb"] > 0
            assert set(row["phases_s"]) >= {
                "mobility",
                "adjacency",
                "link_diff",
            }
        assert payload["schema_version"] == 2
        vs_dense = payload["speedup_vs_dense"]["60"]
        assert vs_dense["edge-engine"] > 0
        assert vs_dense["incremental-engine"] > 0
        vs_edge = payload["speedup_vs_edge"]["60"]
        assert vs_edge["incremental-engine"] > 0
        assert payload["equivalence"] == {"60": "ok"}
        stats = next(
            row["engine_stats"]
            for row in payload["step_benchmarks"]
            if row["mode"] == "incremental-engine"
        )
        assert stats["full_rebuilds"] >= 1

    def test_bench_dense_limit_marker(self, capsys, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--sizes",
                "60",
                "--steps",
                "3",
                "--dense-limit",
                "50",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        vs_dense = payload["speedup_vs_dense"]["60"]
        assert vs_dense["edge-engine"] == "skipped (dense_limit)"
        assert vs_dense["incremental-engine"] == "skipped (dense_limit)"
        # The edge-relative table keeps the large-N rows numeric.
        assert payload["speedup_vs_edge"]["60"]["incremental-engine"] > 0

    def test_bench_modes_subset(self, capsys, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--sizes",
                "60",
                "--steps",
                "3",
                "--modes",
                "edge,incremental",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        modes = {row["mode"] for row in payload["step_benchmarks"]}
        assert modes == {"edge-engine", "incremental-engine"}
        assert payload["speedup_vs_dense"] == {}
        assert payload["speedup_vs_edge"]["60"]["incremental-engine"] > 0
        assert payload["equivalence"] == {"60": "ok"}

    def test_bench_bad_sizes(self, capsys):
        assert main(["bench", "--sizes", "abc"]) == 2

    def test_bench_bad_modes(self, capsys):
        assert main(["bench", "--modes", "edge,warp"]) == 2

    def test_bench_sweep_jobs_empty_entry(self, capsys):
        assert main(["bench", "--sweep-jobs", "1,,0"]) == 2
        assert "empty entry" in capsys.readouterr().err

    def test_bench_sweep_jobs_zero_or_negative(self, capsys):
        assert main(["bench", "--sweep-jobs", "0"]) == 2
        assert ">= 1" in capsys.readouterr().err
        assert main(["bench", "--sweep-jobs", "2,-1"]) == 2
        assert ">= 1" in capsys.readouterr().err

    def test_bench_sweep_jobs_not_integer(self, capsys):
        assert main(["bench", "--sweep-jobs", "1,two"]) == 2
        assert "must be integers" in capsys.readouterr().err


class TestMetricsCommand:
    def _simulate_traced(self, tmp_path, extra=()):
        scenario = tmp_path / "s.json"
        scenario.write_text(
            '{"name": "m", "n_nodes": 30, "range_fraction": 0.2, '
            '"velocity_fraction": 0.05, "duration": 2.0, "warmup": 0.5}'
        )
        trace = tmp_path / "t.jsonl"
        code = main(
            ["simulate", str(scenario), "--trace", str(trace), *extra]
        )
        assert code == 0
        return trace

    def test_metrics_exports_openmetrics_text(self, tmp_path, capsys):
        trace = self._simulate_traced(tmp_path)
        assert main(["metrics", str(trace)]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        assert "# TYPE overhead_messages counter" in out
        assert "# HELP overhead_messages " in out
        assert 'overhead_messages_total{cause="' in out

    def test_metrics_out_file_and_totals_match_summary(self, tmp_path, capsys):
        from repro.obs import summarize_trace

        trace = self._simulate_traced(tmp_path)
        out_path = tmp_path / "m.om"
        assert main(["metrics", str(trace), "--out", str(out_path)]) == 0
        text = out_path.read_text()
        exported = sum(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("overhead_messages_total{")
        )
        assert exported == sum(summarize_trace(trace).messages.values())

    def test_metrics_missing_file_is_input_error(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "none.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_live_export_equals_trace_export(self, tmp_path, capsys):
        live = tmp_path / "live.om"
        trace = self._simulate_traced(
            tmp_path, extra=["--metrics-openmetrics", str(live)]
        )
        assert main(["metrics", str(trace)]) == 0
        rebuilt = capsys.readouterr().out

        def overhead_lines(text):
            return sorted(
                line
                for line in text.splitlines()
                if line.startswith(("overhead_messages_total{",
                                    "overhead_bits_total{"))
                and '"node"' not in line
            )

        live_cells = [
            line
            for line in overhead_lines(live.read_text())
            if "node" not in line.split("{")[0]
        ]
        rebuilt_cells = [
            line
            for line in overhead_lines(rebuilt)
            if "node" not in line.split("{")[0]
        ]
        assert live_cells and live_cells == rebuilt_cells

    def test_report_notes_missing_cache_events(self, tmp_path, capsys):
        trace = self._simulate_traced(tmp_path)
        main(["report", str(trace)])
        out = capsys.readouterr().out
        assert "### Result store" in out
        assert "No `cache_*` events" in out
        assert "### Overhead attribution" in out
        assert "**total**" in out


class TestVersion:
    def test_version_flag(self, capsys):
        import repro
        from repro.sim.engine import ENGINE_SCHEMA_VERSION

        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert capsys.readouterr().out.strip() == (
            f"repro-manet {repro.__version__} "
            f"(engine schema {ENGINE_SCHEMA_VERSION})"
        )


class TestStoreFlags:
    def test_store_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "velocity", "0.01", "--store", "/tmp/s", "--store-refresh"]
        )
        assert args.store == "/tmp/s"
        assert args.store_refresh

    def test_bare_store_flag_means_default_root(self):
        args = build_parser().parse_args(["run", "fig1", "--quick", "--store"])
        assert args.store == ""

    def test_no_store_conflicts(self, capsys):
        code = main(
            ["sweep", "velocity", "0.01", "--no-store", "--store", "/tmp/s"]
        )
        assert code == 2
        assert "--no-store conflicts" in capsys.readouterr().err

    def test_env_var_enables_store(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANET_STORE", str(tmp_path))
        code = main(
            [
                "sweep",
                "velocity",
                "0.01",
                "--n",
                "40",
                "--seeds",
                "1",
                "--duration",
                "1.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "store:" in out
        assert str(tmp_path) in out


class TestStoreCommands:
    def _populate(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "velocity",
                "0.01",
                "--n",
                "40",
                "--seeds",
                "2",
                "--duration",
                "1.0",
                "--store",
                str(tmp_path),
            ]
        )
        assert code == 0
        return capsys.readouterr().out

    def test_cached_rerun_identical_and_all_hits(self, tmp_path, capsys):
        def strip(text):
            return [
                line
                for line in text.splitlines()
                if not line.startswith("store:")
            ]

        fresh = self._populate(tmp_path, capsys)
        assert "2 miss(es)" in fresh
        cached = self._populate(tmp_path, capsys)
        assert "2 hit(s), 0 miss(es) (100.0% hit rate)" in cached
        assert strip(fresh) == strip(cached)

    def test_stats_ls_verify(self, tmp_path, capsys):
        self._populate(tmp_path, capsys)
        assert main(["store", "stats", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "task records     2" in out
        assert "sweep manifests  1" in out
        assert main(["store", "ls", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) == 2
        assert "_run_once_task" in out
        assert main(["store", "verify", "--store", str(tmp_path)]) == 0
        assert "store OK: 2 record(s)" in capsys.readouterr().out

    def test_verify_reports_corruption(self, tmp_path, capsys):
        from repro.store import ResultStore

        self._populate(tmp_path, capsys)
        [first, _] = list(ResultStore(root=tmp_path).iter_record_paths())
        first.write_text("garbage")
        assert main(["store", "verify", "--store", str(tmp_path)]) == 1
        assert "CORRUPT" in capsys.readouterr().err

    def test_gc_max_size(self, tmp_path, capsys):
        self._populate(tmp_path, capsys)
        assert (
            main(["store", "gc", "--store", str(tmp_path), "--max-size", "0"])
            == 0
        )
        assert "evicted 2 file(s)" in capsys.readouterr().out
        assert main(["store", "stats", "--store", str(tmp_path)]) == 0
        assert "task records     0" in capsys.readouterr().out


class TestSimulateErrors:
    def test_unknown_scenario_key_is_input_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "n_nodes": 20, "rnge_fraction": 0.2}')
        assert main(["simulate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario keys" in err
        assert "range_fraction" in err  # the valid keys are listed

    def test_missing_scenario_is_input_error(self, tmp_path, capsys):
        assert main(["simulate", str(tmp_path / "none.json")]) == 2
        assert "bad scenario" in capsys.readouterr().err
