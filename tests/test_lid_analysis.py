"""Tests for the LID head-probability analysis (repro.core.lid_analysis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degree import expected_degree
from repro.core.lid_analysis import (
    expected_cluster_count,
    expected_cluster_size,
    lid_fixpoint_residual,
    lid_head_probability,
    lid_head_probability_approx,
    lid_head_probability_exact,
    lid_member_mass,
)


class TestFixpointResidual:
    def test_zero_at_origin(self):
        assert lid_fixpoint_residual(0.0, 10.0) == pytest.approx(0.0)

    def test_positive_at_one(self):
        # g(1) = d > 0.
        assert lid_fixpoint_residual(1.0, 10.0) == pytest.approx(10.0)

    def test_negative_near_zero(self):
        assert lid_fixpoint_residual(1e-6, 10.0) < 0.0

    def test_root_satisfies_eqn16(self):
        for degree in (0.5, 3.0, 20.0, 150.0):
            p = lid_head_probability_exact(degree)
            # Eqn (16): P = (1 - (1-P)^(d+1)) / ((d+1) P).
            rhs = (1.0 - (1.0 - p) ** (degree + 1.0)) / ((degree + 1.0) * p)
            assert p == pytest.approx(rhs, rel=1e-9)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            lid_fixpoint_residual(0.5, -1.0)


class TestExactProbability:
    def test_isolated_node_is_head(self):
        assert lid_head_probability_exact(0.0) == 1.0

    def test_degree_one_known_value(self):
        # (d+1)P^2 = 1-(1-P)^2 with d=1: 2P^2 = 2P - P^2 -> P = 2/3.
        assert lid_head_probability_exact(1.0) == pytest.approx(2.0 / 3.0)

    def test_decreasing_in_degree(self):
        degrees = np.linspace(0.0, 200.0, 40)
        ps = lid_head_probability_exact(degrees)
        assert np.all(np.diff(ps) <= 1e-12)

    def test_vectorized_matches_scalar(self):
        degrees = np.array([0.0, 1.0, 7.5, 64.0])
        vector = lid_head_probability_exact(degrees)
        scalars = [lid_head_probability_exact(float(d)) for d in degrees]
        np.testing.assert_allclose(vector, scalars)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            lid_head_probability_exact(-0.5)


class TestApproximation:
    def test_eqn17_formula(self):
        assert lid_head_probability_approx(8.0) == pytest.approx(1.0 / 3.0)

    def test_converges_to_exact(self):
        # Fig 4(b): the approximation tightens as d grows.
        errors = []
        for degree in (2.0, 10.0, 50.0, 250.0):
            exact = lid_head_probability_exact(degree)
            approx = lid_head_probability_approx(degree)
            errors.append(abs(exact - approx) / exact)
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 0.005

    def test_always_upper_bound(self):
        # 1/sqrt(d+1) >= exact root (dropping (1-P)^(d+1) raises P).
        for degree in (1.0, 5.0, 30.0):
            assert lid_head_probability_approx(degree) >= lid_head_probability_exact(
                degree
            )


class TestMemberMass:
    def test_fig4a_convergence(self):
        # 1-(1-P)^(d+1) -> 1 along the fixpoint curve.
        masses = []
        for degree in (1.0, 4.0, 16.0, 64.0):
            p = lid_head_probability_exact(degree)
            masses.append(lid_member_mass(p, degree))
        assert masses == sorted(masses)
        assert masses[-1] > 0.99

    def test_bounds(self):
        assert lid_member_mass(0.0, 10.0) == 0.0
        assert lid_member_mass(1.0, 10.0) == 1.0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            lid_member_mass(1.5, 10.0)


class TestNetworkLevel:
    def test_eqn18_composition(self):
        n, rho, r = 400, 400.0, 0.1
        degree = float(expected_degree(n, rho, r))
        assert lid_head_probability(n, rho, r) == pytest.approx(
            lid_head_probability_exact(degree)
        )
        assert lid_head_probability(n, rho, r, exact=False) == pytest.approx(
            lid_head_probability_approx(degree)
        )

    def test_cluster_count_and_size(self, params):
        count = expected_cluster_count(params)
        size = expected_cluster_size(params)
        assert count == pytest.approx(
            params.n_nodes
            * lid_head_probability(params.n_nodes, params.density, params.tx_range)
        )
        assert count * size == pytest.approx(params.n_nodes, rel=1e-9)

    def test_fewer_clusters_with_longer_range(self, params):
        longer = params.with_(tx_range=2 * params.tx_range)
        assert expected_cluster_count(longer) < expected_cluster_count(params)


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=0.0, max_value=500.0))
def test_probability_in_unit_interval_property(degree):
    p = lid_head_probability_exact(degree)
    assert 0.0 < p <= 1.0
    # And the approximation brackets it from above.
    assert p <= lid_head_probability_approx(degree) + 1e-12
