"""Smoke tests: the example scripts must run and print their headlines.

Only the fast examples run here (the protocol comparison and mobility
sweep take minutes); they are exercised by their experiment-registry
equivalents in the benchmark suite.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "analysis: LID head ratio" in out
    assert "simulation: measured P" in out
    assert "f_route" in out


def test_capacity_planning_runs():
    out = _run("capacity_planning.py")
    assert "feasible transmission-range window" in out
    assert "budget split" in out
    assert "ROUTE" in out


def test_scenario_files_are_valid():
    from repro.scenario import load_scenario

    for path in (EXAMPLES / "scenarios").glob("*.json"):
        config = load_scenario(path)
        assert config.n_nodes > 0
