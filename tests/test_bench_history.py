"""Bench-history tracking: append, regression gating, tolerant reads."""

from __future__ import annotations

import json

import pytest

from repro.analysis.benchmark import (
    DEFAULT_REGRESSION_THRESHOLD,
    history_entry,
    update_bench_history,
)


def _payload(steps_per_sec=1000.0, mode="edge-set", n_nodes=100,
             phases_s=None, steps=0):
    row = {
        "mode": mode,
        "n_nodes": n_nodes,
        "steps_per_sec": steps_per_sec,
        "peak_rss_kb": 1,
    }
    if phases_s is not None:
        row["phases_s"] = phases_s
        row["steps"] = steps
    return {
        "machine": {"python": "3.x", "cpus": 8},
        "config": {"steps": 30},
        "step_benchmarks": [row],
    }


class TestHistoryEntry:
    def test_entry_shape(self):
        entry = history_entry(_payload(steps_per_sec=512.0))
        assert entry["schema"] == 1
        assert entry["points"] == {"edge-set:N100": 512.0}
        assert entry["machine"]["cpus"] == 8
        # ISO-8601 UTC timestamp.
        assert "T" in entry["recorded_at"]
        assert entry["recorded_at"].endswith("+00:00")

    def test_phases_normalized_per_step(self):
        entry = history_entry(
            _payload(phases_s={"mobility": 3.0, "adjacency": 6.0}, steps=30)
        )
        assert entry["phases"]["edge-set:N100"] == {
            "mobility": 0.1,
            "adjacency": 0.2,
        }

    def test_phases_empty_without_timing_data(self):
        assert history_entry(_payload())["phases"] == {}


class TestUpdateBenchHistory:
    def test_first_run_appends_without_regression(self, tmp_path):
        path = tmp_path / "history.jsonl"
        entry, regressions = update_bench_history(_payload(1000.0), path)
        assert regressions == []
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == entry

    def test_regression_vs_best_prior_is_flagged(self, tmp_path):
        path = tmp_path / "history.jsonl"
        update_bench_history(_payload(1000.0), path)
        update_bench_history(_payload(800.0), path)  # best stays 1000
        _, regressions = update_bench_history(_payload(700.0), path)
        assert len(regressions) == 1
        assert "edge-set:N100" in regressions[0]
        assert "1000.0" in regressions[0]
        # The regressing entry is still recorded as evidence.
        assert len(path.read_text().splitlines()) == 3

    def test_within_threshold_passes(self, tmp_path):
        path = tmp_path / "history.jsonl"
        update_bench_history(_payload(1000.0), path)
        _, regressions = update_bench_history(
            _payload(1000.0 * (1.0 - DEFAULT_REGRESSION_THRESHOLD) + 1.0),
            path,
        )
        assert regressions == []

    def test_points_only_gate_against_matching_points(self, tmp_path):
        path = tmp_path / "history.jsonl"
        update_bench_history(_payload(1000.0, n_nodes=500), path)
        _, regressions = update_bench_history(
            _payload(10.0, n_nodes=100), path
        )
        assert regressions == []

    def test_malformed_history_lines_are_skipped(self, tmp_path, caplog):
        path = tmp_path / "history.jsonl"
        update_bench_history(_payload(1000.0), path)
        with path.open("a") as fh:
            fh.write("{not json\n")
        with caplog.at_level("WARNING", logger="repro.analysis.benchmark"):
            _, regressions = update_bench_history(_payload(500.0), path)
        assert "malformed bench-history line" in caplog.text
        assert regressions  # the valid prior entry still gates

    def test_threshold_validation(self, tmp_path):
        with pytest.raises(ValueError, match="threshold"):
            update_bench_history(
                _payload(), tmp_path / "h.jsonl", threshold=1.5
            )

    def test_regression_carries_phase_attribution(self, tmp_path):
        path = tmp_path / "history.jsonl"
        update_bench_history(
            _payload(1000.0, phases_s={"mobility": 1.0, "adjacency": 2.0},
                     steps=10),
            path,
        )
        _, regressions = update_bench_history(
            _payload(500.0, phases_s={"mobility": 1.1, "adjacency": 7.0},
                     steps=10),
            path,
        )
        assert regressions
        joined = "\n".join(regressions)
        assert "500.0 steps/s" in regressions[0]
        # The attribution names the phase whose per-step cost moved
        # most (adjacency: 0.2 -> 0.7 s/step), largest delta first.
        assert "phase adjacency" in joined
        assert "s/step" in joined
        adjacency_line = next(
            line for line in regressions if "adjacency" in line
        )
        assert "+250.0%" in adjacency_line

    def test_no_attribution_without_prior_phases(self, tmp_path):
        path = tmp_path / "history.jsonl"
        update_bench_history(_payload(1000.0), path)
        _, regressions = update_bench_history(
            _payload(500.0, phases_s={"mobility": 1.0}, steps=10), path
        )
        assert len(regressions) == 1
        assert "phase" not in regressions[0]


class TestBenchCliHistory:
    def test_bench_appends_and_gates(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        history = tmp_path / "history.jsonl"
        argv = [
            "bench",
            "--out", str(out),
            "--sizes", "60",
            "--steps", "3",
            "--history", str(history),
        ]
        assert main(argv) == 0
        assert len(history.read_text().splitlines()) == 1
        capsys.readouterr()

        # Plant an impossible prior best: the next run must regress.
        entry = json.loads(history.read_text().splitlines()[0])
        entry["points"] = {k: v * 100.0 for k, v in entry["points"].items()}
        with history.open("a") as fh:
            fh.write(json.dumps(entry) + "\n")
        assert main(argv) == 1
        assert "REGRESSION" in capsys.readouterr().err
