"""Tests for the proactive intra-cluster routing protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering, Role
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.routing import IntraClusterRoutingProtocol
from repro.sim import Simulation


def _stack(n=80, rf=0.2, vf=0.05, seed=0, **intra_kwargs):
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=rf, velocity_fraction=vf
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    intra = IntraClusterRoutingProtocol(maintenance, **intra_kwargs)
    sim.attach(intra)
    sim.attach(maintenance)
    return sim, maintenance, intra


class TestOverheadAccounting:
    def test_intra_cluster_break_floods_cluster(self):
        sim, maintenance, intra = _stack(vf=0.0, seed=1)
        state = maintenance.state
        # Find a member-head pair: breaking it is an intra-cluster event.
        member = int(np.flatnonzero(state.roles == Role.MEMBER)[0])
        head = int(state.head_of[member])
        size = len(state.cluster_nodes(head))
        sim.stats.start_measuring()
        intra.on_link_down(sim, min(member, head), max(member, head), 0.0)
        assert sim.stats.message_count("route") == size
        assert sim.stats.bit_count("route") == pytest.approx(
            size * sim.params.messages.p_route
        )

    def test_full_table_mode_bit_accounting(self):
        sim, maintenance, intra = _stack(vf=0.0, seed=1, full_table=True)
        state = maintenance.state
        member = int(np.flatnonzero(state.roles == Role.MEMBER)[0])
        head = int(state.head_of[member])
        size = len(state.cluster_nodes(head))
        sim.stats.start_measuring()
        intra.on_link_down(sim, min(member, head), max(member, head), 0.0)
        assert sim.stats.bit_count("route") == pytest.approx(
            size * size * sim.params.messages.p_route
        )

    def test_cross_cluster_event_free(self):
        sim, maintenance, intra = _stack(vf=0.0, seed=2)
        state = maintenance.state
        heads = state.heads()
        u, v = int(heads[0]), int(heads[1])  # different clusters
        sim.stats.start_measuring()
        intra.on_link_up(sim, min(u, v), max(u, v), 0.0)
        assert sim.stats.message_count("route") == 0

    def test_membership_change_updates_optional(self):
        sim, maintenance, intra = _stack(
            vf=0.0, seed=3, update_on_membership_change=True
        )
        state = maintenance.state
        member = int(np.flatnonzero(state.roles == Role.MEMBER)[0])
        head = int(state.head_of[member])
        sim.adjacency[member, head] = sim.adjacency[head, member] = False
        sim.stats.start_measuring()
        # Deliver in attach order: intra first (old cluster flood), then
        # maintenance (re-affiliation) which triggers the listener.
        intra.on_link_down(sim, min(member, head), max(member, head), 0.0)
        before = sim.stats.message_count("route")
        maintenance.on_link_down(sim, min(member, head), max(member, head), 0.0)
        assert sim.stats.message_count("route") > before


class TestRoutingTables:
    def test_head_reachable_from_every_member(self):
        sim, maintenance, intra = _stack(vf=0.0, seed=4)
        state = maintenance.state
        for head in state.heads():
            for member in state.members_of(int(head)):
                path = intra.path(sim, int(member), int(head))
                assert path is not None
                assert path[0] == member and path[-1] == head
                assert len(path) == 2  # one-hop clusters

    def test_member_to_member_via_head_or_direct(self):
        sim, maintenance, intra = _stack(vf=0.0, seed=5)
        state = maintenance.state
        for head in state.heads():
            members = state.members_of(int(head))
            if len(members) >= 2:
                a, b = int(members[0]), int(members[1])
                path = intra.path(sim, a, b)
                assert path is not None
                assert len(path) <= 3  # at most member-head-member
                # Every hop must be a live link.
                for u, v in zip(path, path[1:]):
                    assert sim.has_link(u, v)
                return
        pytest.skip("no cluster with two members")

    def test_paths_are_shortest_in_cluster_subgraph(self):
        import networkx as nx

        sim, maintenance, intra = _stack(vf=0.0, seed=6)
        state = maintenance.state
        for head in state.heads():
            nodes = [int(x) for x in state.cluster_nodes(int(head))]
            sub = nx.Graph()
            sub.add_nodes_from(nodes)
            for i, u in enumerate(nodes):
                for v in nodes[i + 1 :]:
                    if sim.has_link(u, v):
                        sub.add_edge(u, v)
            for u in nodes:
                for v in nodes:
                    if u == v:
                        continue
                    path = intra.path(sim, u, v)
                    if nx.has_path(sub, u, v):
                        assert path is not None
                        assert len(path) - 1 == nx.shortest_path_length(sub, u, v)
                    else:
                        assert path is None

    def test_cross_cluster_path_none(self):
        sim, maintenance, intra = _stack(vf=0.0, seed=7)
        state = maintenance.state
        heads = state.heads()
        assert intra.path(sim, int(heads[0]), int(heads[1])) is None

    def test_tables_refresh_after_mobility(self):
        sim, maintenance, intra = _stack(seed=8)
        for _ in range(60):
            sim.step()
        state = maintenance.state
        # After movement, tables must still route member -> head.
        for head in state.heads():
            for member in state.members_of(int(head)):
                path = intra.path(sim, int(member), int(head))
                assert path == [int(member), int(head)]

    def test_table_size_tracks_cluster(self):
        sim, maintenance, intra = _stack(vf=0.0, seed=9)
        state = maintenance.state
        head = int(state.heads()[0])
        cluster = state.cluster_nodes(head)
        # The head reaches every member (one-hop), so its table holds
        # the full cluster.
        assert intra.table_size(sim, head) == len(cluster) - 1
