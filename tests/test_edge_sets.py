"""Tests for the edge-set connectivity representation.

The engine's primary connectivity state is a sorted ``(E, 2)`` edge
array; these tests pin its exact equivalence to the dense adjacency
representation — conversions roundtrip, ``diff_edge_sets`` produces the
same events as ``diff_adjacency``, every compute method yields the same
edge set, and the engine's lazy dense view stays consistent with its
edge state (including under node failure).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.sim import Simulation
from repro.spatial import (
    GRID_CROSSOVER_NODES,
    Boundary,
    SquareRegion,
    adjacency_to_edges,
    compute_edges,
    degree_counts,
    degree_counts_from_edges,
    diff_adjacency,
    diff_edge_sets,
    edges_to_adjacency,
    select_connectivity_method,
)


def _random_adjacency(n, density, seed):
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((n, n)) < density, k=1)
    return upper | upper.T


class TestConversions:
    def test_roundtrip_via_edges(self):
        adjacency = _random_adjacency(40, 0.2, 0)
        edges = adjacency_to_edges(adjacency)
        np.testing.assert_array_equal(
            edges_to_adjacency(edges, 40), adjacency
        )

    def test_edges_sorted_upper_triangle(self):
        edges = adjacency_to_edges(_random_adjacency(30, 0.3, 1))
        assert np.all(edges[:, 0] < edges[:, 1])
        keys = edges[:, 0] * 30 + edges[:, 1]
        assert np.all(np.diff(keys) > 0)

    def test_empty_graph(self):
        edges = adjacency_to_edges(np.zeros((5, 5), dtype=bool))
        assert edges.shape == (0, 2)
        assert not edges_to_adjacency(edges, 5).any()

    def test_full_graph(self):
        adjacency = ~np.eye(6, dtype=bool)
        edges = adjacency_to_edges(adjacency)
        assert len(edges) == 15
        np.testing.assert_array_equal(edges_to_adjacency(edges, 6), adjacency)

    def test_degree_counts_agree(self):
        adjacency = _random_adjacency(50, 0.15, 2)
        np.testing.assert_array_equal(
            degree_counts_from_edges(adjacency_to_edges(adjacency), 50),
            degree_counts(adjacency),
        )


class TestDiffEdgeSets:
    @pytest.mark.parametrize("boundary", [Boundary.TORUS, Boundary.OPEN])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_diff_adjacency_random_motion(self, boundary, seed):
        region = SquareRegion(1.0, boundary)
        rng = np.random.default_rng(seed)
        before = region.uniform_positions(120, seed)
        after = np.clip(
            before + rng.normal(0.0, 0.02, before.shape), 0.0, region.side
        )
        if boundary is Boundary.TORUS:
            after = after % region.side
        adj_before = region.adjacency(before, 0.15)
        adj_after = region.adjacency(after, 0.15)
        dense_events = diff_adjacency(adj_before, adj_after)
        edge_events = diff_edge_sets(
            adjacency_to_edges(adj_before), adjacency_to_edges(adj_after)
        )
        np.testing.assert_array_equal(
            edge_events.generated, dense_events.generated
        )
        np.testing.assert_array_equal(edge_events.broken, dense_events.broken)

    def test_no_change(self):
        edges = adjacency_to_edges(_random_adjacency(20, 0.3, 4))
        events = diff_edge_sets(edges, edges)
        assert events.change_count == 0

    def test_empty_to_full(self):
        full = adjacency_to_edges(~np.eye(7, dtype=bool))
        empty = np.empty((0, 2), dtype=np.int64)
        events = diff_edge_sets(empty, full)
        assert events.generation_count == 21
        assert events.break_count == 0
        events = diff_edge_sets(full, empty)
        assert events.break_count == 21
        assert events.generation_count == 0

    def test_events_sorted(self):
        before = adjacency_to_edges(_random_adjacency(60, 0.1, 5))
        after = adjacency_to_edges(_random_adjacency(60, 0.1, 6))
        events = diff_edge_sets(before, after)
        for pairs in (events.generated, events.broken):
            keys = pairs[:, 0] * 60 + pairs[:, 1]
            assert np.all(np.diff(keys) > 0)


class TestComputeEdges:
    @pytest.mark.parametrize("boundary", [Boundary.TORUS, Boundary.OPEN])
    def test_dense_equals_grid(self, boundary):
        region = SquareRegion(1.0, boundary)
        positions = region.uniform_positions(200, 7)
        dense = compute_edges(region, positions, 0.1, method="dense")
        grid = compute_edges(region, positions, 0.1, method="grid")
        np.testing.assert_array_equal(dense, grid)

    def test_matches_region_adjacency(self, unit_torus):
        positions = unit_torus.uniform_positions(150, 8)
        edges = compute_edges(unit_torus, positions, 0.12)
        np.testing.assert_array_equal(
            edges_to_adjacency(edges, 150),
            unit_torus.adjacency(positions, 0.12),
        )

    def test_unknown_method_rejected(self, unit_torus):
        positions = unit_torus.uniform_positions(10, 0)
        with pytest.raises(ValueError):
            compute_edges(unit_torus, positions, 0.1, method="fancy")


class TestConnectivitySelection:
    def test_small_network_stays_dense(self):
        assert select_connectivity_method(50, 0.1, 1.0) == "dense"

    def test_large_sparse_uses_grid(self):
        assert (
            select_connectivity_method(GRID_CROSSOVER_NODES + 1, 0.1, 1.0)
            == "grid"
        )

    def test_at_crossover_stays_dense(self):
        assert (
            select_connectivity_method(GRID_CROSSOVER_NODES, 0.1, 1.0)
            == "dense"
        )

    def test_large_but_dense_range_stays_dense(self):
        # The grid needs >= MIN_GRID_CELLS_PER_SIDE cells to prune.
        assert select_connectivity_method(5000, 0.3, 1.0) == "dense"

    def test_engine_resolves_auto(self):
        small = NetworkParameters.from_fractions(
            n_nodes=40, range_fraction=0.1, velocity_fraction=0.05
        )
        sim = Simulation(
            small, EpochRandomWaypointModel(small.velocity, 1.0), seed=0
        )
        assert sim.connectivity == "dense"
        # A large sparse network with the recommended step's small
        # per-step displacement qualifies for the incremental engine.
        large = NetworkParameters.from_fractions(
            n_nodes=300, range_fraction=0.05, velocity_fraction=0.05
        )
        sim = Simulation(
            large, EpochRandomWaypointModel(large.velocity, 1.0), seed=0
        )
        assert sim.connectivity == "incremental"

    def test_fast_steps_fall_back_to_grid(self):
        # A step so large that nodes cross a sizable fraction of the
        # candidate margin each step cannot amortize validations; the
        # mobility-aware selection must fall back to the grid.
        assert (
            select_connectivity_method(
                300, 0.05, 1.0, velocity=0.05, dt=10.0
            )
            == "grid"
        )

    def test_static_network_prefers_incremental(self):
        assert (
            select_connectivity_method(300, 0.05, 1.0, velocity=0.0, dt=0.1)
            == "incremental"
        )

    def test_expanded_radius_density_guard(self):
        # Sparse enough for the plain grid but not for the expanded
        # candidate radius: stay on the grid.
        assert select_connectivity_method(500, 0.2, 1.0) == "grid"
        assert (
            select_connectivity_method(500, 0.2, 1.0, velocity=0.0, dt=0.1)
            == "grid"
        )

    def test_engine_rejects_unknown_connectivity(self):
        params = NetworkParameters.from_fractions(
            n_nodes=30, range_fraction=0.1, velocity_fraction=0.05
        )
        with pytest.raises(ValueError):
            Simulation(
                params,
                EpochRandomWaypointModel(params.velocity, 1.0),
                seed=0,
                connectivity="sparse",
            )


class TestEngineEdgeState:
    def _sim(self, n_nodes=80, connectivity="auto", seed=0):
        params = NetworkParameters.from_fractions(
            n_nodes=n_nodes, range_fraction=0.12, velocity_fraction=0.05
        )
        return Simulation(
            params,
            EpochRandomWaypointModel(params.velocity, 1.0),
            seed=seed,
            connectivity=connectivity,
        )

    def test_adjacency_view_matches_edges(self):
        sim = self._sim()
        for _ in range(5):
            sim.step()
            np.testing.assert_array_equal(
                sim.adjacency,
                edges_to_adjacency(sim.edges, sim.n_nodes),
            )
            np.testing.assert_array_equal(
                sim.adjacency,
                sim.region.adjacency(sim.positions, sim.params.tx_range),
            )

    def test_adjacency_cache_invalidated_per_step(self):
        sim = self._sim()
        before = sim.adjacency
        assert sim.adjacency is before  # cached within a step
        sim.step()
        assert sim.adjacency is not before

    def test_dense_and_grid_engines_agree(self):
        dense = self._sim(connectivity="dense")
        grid = self._sim(connectivity="grid")
        for _ in range(5):
            dense_events = dense.step()
            grid_events = grid.step()
            np.testing.assert_array_equal(dense.edges, grid.edges)
            np.testing.assert_array_equal(
                dense_events.generated, grid_events.generated
            )
            np.testing.assert_array_equal(
                dense_events.broken, grid_events.broken
            )

    def test_edge_count_and_degrees(self):
        sim = self._sim()
        assert sim.edge_count == len(sim.edges)
        np.testing.assert_array_equal(
            sim.degrees(), degree_counts(sim.adjacency)
        )
        assert sim.degrees().sum() == 2 * sim.edge_count

    def test_failed_node_absent_from_edges(self):
        sim = self._sim()
        node = int(sim.degrees().argmax())
        sim.fail_node(node)
        sim.step()
        assert not np.any(sim.edges == node)
        assert sim.degree_of(node) == 0
        sim.recover_node(node)
        sim.step()
        assert sim.degree_of(node) > 0
