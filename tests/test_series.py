"""Tests for series utilities (repro.analysis.series)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    crossing_indices,
    is_monotonic,
    relative_error,
    summarize,
)


class TestSummarize:
    def test_single_sample(self):
        summary = summarize([3.0])
        assert summary.mean == 3.0
        assert summary.std == 0.0
        assert summary.count == 1
        assert math.isnan(summary.stderr)
        assert summary.ci95() == (3.0, 3.0)

    def test_known_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        lo, hi = summary.ci95()
        assert lo < 2.5 < hi

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_accepts_generators(self):
        summary = summarize(x for x in (1.0, 3.0))
        assert summary.mean == 2.0


class TestRelativeError:
    def test_basic(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_prediction(self):
        assert relative_error(1.0, 0.0) == float("inf")
        assert relative_error(0.0, 0.0) == 0.0

    def test_symmetric_sign(self):
        assert relative_error(9.0, 10.0) == pytest.approx(0.1)


class TestMonotonic:
    def test_increasing(self):
        assert is_monotonic([1, 2, 3])
        assert not is_monotonic([1, 3, 2])

    def test_decreasing(self):
        assert is_monotonic([3, 2, 1], increasing=False)
        assert not is_monotonic([1, 2, 3], increasing=False)

    def test_tolerance_forgives_noise(self):
        noisy = [1.0, 2.0, 1.95, 3.0]
        assert not is_monotonic(noisy)
        assert is_monotonic(noisy, tolerance=0.05)

    def test_short_series(self):
        assert is_monotonic([5.0])
        assert is_monotonic([])


class TestCrossings:
    def test_single_crossing(self):
        a = [1.0, 2.0, 3.0]
        b = [3.0, 2.5, 1.0]
        assert crossing_indices(a, b) == [1]

    def test_no_crossing(self):
        assert crossing_indices([1, 2, 3], [4, 5, 6]) == []

    def test_multiple_crossings(self):
        a = [0.0, 2.0, 0.0, 2.0]
        b = [1.0, 1.0, 1.0, 1.0]
        assert crossing_indices(a, b) == [0, 1, 2]

    def test_short_series(self):
        assert crossing_indices([1.0], [2.0]) == []
