"""Invariant auditor: cadence, trace events, counters, strict mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import ClusterMaintenanceProtocol, LowestIdClustering
from repro.clustering.base import Role
from repro.mobility import EpochRandomWaypointModel
from repro.obs import AuditError, CollectingTracer, InvariantAuditor
from repro.routing import IntraClusterRoutingProtocol
from repro.sim import HelloProtocol, Simulation


def _build_stack(params, seed=0, tracer=None, every=1.0, strict=False):
    sim = Simulation(
        params,
        EpochRandomWaypointModel(params.velocity, epoch=1.0),
        seed=seed,
        tracer=tracer,
    )
    sim.attach(HelloProtocol(mode="event"))
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    sim.attach(IntraClusterRoutingProtocol(maintenance))
    sim.attach(maintenance)
    auditor = sim.attach(
        InvariantAuditor(maintenance, every=every, strict=strict)
    )
    return sim, maintenance, auditor


class TestAuditCadence:
    def test_audits_on_the_configured_cadence(self, params):
        tracer = CollectingTracer()
        sim, _, auditor = _build_stack(params, tracer=tracer, every=1.0)
        sim.run(duration=3.0, warmup=0.0)
        # One audit per simulated second, plus the closing run-end audit.
        assert 3 <= auditor.audits <= 6
        events = tracer.of("invariant_audit")
        assert len(events) == auditor.audits

    def test_maintained_structure_stays_valid(self, params):
        tracer = CollectingTracer()
        sim, _, auditor = _build_stack(params, tracer=tracer)
        sim.run(duration=3.0, warmup=0.5)
        assert auditor.ok
        assert auditor.violations == 0
        assert auditor.violation_time == 0.0
        assert auditor.violation_spans == []
        for record in tracer.of("invariant_audit"):
            assert record["ok"] is True
            assert record["adjacent_heads"] == 0
            assert record["unaffiliated"] == 0
            assert record["sim"] == sim.sim_id

    def test_event_counters_are_cumulative(self, params):
        tracer = CollectingTracer()
        sim, _, auditor = _build_stack(params, tracer=tracer)
        sim.run(duration=3.0, warmup=0.0)
        counts = [r["audits"] for r in tracer.of("invariant_audit")]
        assert counts == sorted(counts)
        assert counts[-1] == auditor.audits

    def test_rejects_non_positive_cadence(self, params):
        maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
        with pytest.raises(ValueError, match="every"):
            InvariantAuditor(maintenance, every=0.0)


class TestAuditViolations:
    def _corrupt(self, sim, maintenance):
        """Promote a member to head: its own head becomes an adjacent head."""
        state = maintenance.state
        members = np.flatnonzero(state.roles == Role.MEMBER)
        for node in members:
            head = int(state.head_of[node])
            if sim.adjacency[node, head]:
                state.make_head(int(node))
                return
        pytest.fail("no member adjacent to its head found")

    def test_violation_is_counted_and_traced(self, params):
        tracer = CollectingTracer()
        sim, maintenance, auditor = _build_stack(params, tracer=tracer)
        sim.run(duration=1.0, warmup=0.0)
        self._corrupt(sim, maintenance)
        assert auditor.audit(sim, sim.time) is False
        assert auditor.violations == 1
        assert not auditor.ok
        last = tracer.of("invariant_audit")[-1]
        assert last["ok"] is False
        assert last["adjacent_heads"] >= 1

    def test_strict_mode_raises_audit_error(self, params):
        sim, maintenance, auditor = _build_stack(params, strict=True)
        sim.run(duration=1.0, warmup=0.0)
        self._corrupt(sim, maintenance)
        with pytest.raises(AuditError, match="invariant audit failed"):
            auditor.audit(sim, sim.time)

    def test_violation_episode_closes_at_run_end(self, params):
        sim, maintenance, auditor = _build_stack(params, every=0.5)
        sim.run(duration=1.0, warmup=0.0)
        self._corrupt(sim, maintenance)
        auditor.audit(sim, sim.time)
        auditor.on_run_end(sim, sim.time + 0.5)
        assert auditor.violation_spans
        start, end = auditor.violation_spans[-1]
        assert end >= start
