"""Failure-injection tests: node crashes and recoveries.

The engine's `fail_node`/`recover_node` mask a node's radio; protocols
observe plain link events and must keep their invariants.  These tests
crash cluster-heads, partition whole regions, and recover nodes, and
assert the stack survives every scenario.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    ClusterMaintenanceProtocol,
    LowestIdClustering,
    Role,
    check_properties,
)
from repro.core.params import NetworkParameters
from repro.mobility import EpochRandomWaypointModel
from repro.routing import (
    AodvProtocol,
    DsdvProtocol,
    HybridRoutingProtocol,
    IntraClusterRoutingProtocol,
)
from repro.sim import HelloProtocol, Simulation


def _clustered_stack(n=80, vf=0.02, seed=0):
    params = NetworkParameters.from_fractions(
        n_nodes=n, range_fraction=0.2, velocity_fraction=vf
    )
    sim = Simulation(
        params, EpochRandomWaypointModel(params.velocity, 1.0), seed=seed
    )
    sim.attach(HelloProtocol("event"))
    maintenance = ClusterMaintenanceProtocol(LowestIdClustering())
    intra = IntraClusterRoutingProtocol(maintenance)
    sim.attach(intra)
    sim.attach(maintenance)
    hybrid = sim.attach(HybridRoutingProtocol(maintenance, intra))
    return sim, maintenance, intra, hybrid


class TestEngineFailureSemantics:
    def test_failed_node_loses_links_next_step(self):
        sim, *_ = _clustered_stack(vf=0.0)
        node = 0
        assert sim.degree_of(node) > 0
        sim.fail_node(node)
        events = sim.step()
        assert sim.degree_of(node) == 0
        assert any(node in pair for pair in events.broken)

    def test_failed_nodes_listed(self):
        sim, *_ = _clustered_stack()
        sim.fail_node(3)
        sim.fail_node(7)
        np.testing.assert_array_equal(sim.failed_nodes, [3, 7])

    def test_recovery_restores_links(self):
        sim, *_ = _clustered_stack(vf=0.0)
        node = 0
        before = sim.degree_of(node)
        sim.fail_node(node)
        sim.step()
        sim.recover_node(node)
        sim.step()
        assert sim.degree_of(node) == before

    def test_failed_pairs_generate_no_events(self):
        sim, *_ = _clustered_stack(vf=0.0)
        sim.fail_node(0)
        sim.step()
        events = sim.step()
        assert not any(0 in pair for pair in events.broken)
        assert not any(0 in pair for pair in events.generated)


class TestClusteringUnderFailure:
    def test_head_crash_reclusters_members(self):
        sim, maintenance, *_ = _clustered_stack(vf=0.0, seed=1)
        state = maintenance.state
        # Crash the head with the most members.
        heads = state.heads()
        victim = max(
            (int(h) for h in heads), key=lambda h: len(state.members_of(h))
        )
        orphans = [int(m) for m in state.members_of(victim)]
        assert orphans, "pick a head with members"
        sim.fail_node(victim)
        sim.step()
        violations = check_properties(maintenance.state, sim.adjacency)
        assert violations.ok, violations.describe()
        for orphan in orphans:
            assert state.head_of[orphan] != victim or state.is_head(orphan)
        # The crashed node itself degraded to an isolated head.
        assert state.is_head(victim)

    def test_mass_failure_keeps_invariants(self):
        sim, maintenance, *_ = _clustered_stack(vf=0.02, seed=2)
        rng = np.random.default_rng(0)
        victims = rng.choice(sim.n_nodes, size=sim.n_nodes // 3, replace=False)
        for victim in victims:
            sim.fail_node(int(victim))
        for _ in range(30):
            sim.step()
            assert check_properties(maintenance.state, sim.adjacency).ok

    def test_crash_recover_cycle_invariants(self):
        sim, maintenance, *_ = _clustered_stack(vf=0.02, seed=3)
        rng = np.random.default_rng(1)
        for round_index in range(10):
            node = int(rng.integers(0, sim.n_nodes))
            if sim.active[node]:
                sim.fail_node(node)
            else:
                sim.recover_node(node)
            for _ in range(5):
                sim.step()
                violations = check_properties(maintenance.state, sim.adjacency)
                assert violations.ok, violations.describe()

    def test_recovered_head_rejoins_cleanly(self):
        sim, maintenance, *_ = _clustered_stack(vf=0.0, seed=4)
        state = maintenance.state
        victim = int(state.heads()[0])
        sim.fail_node(victim)
        sim.step()
        sim.recover_node(victim)
        sim.step()
        assert check_properties(maintenance.state, sim.adjacency).ok


class TestRoutingUnderFailure:
    def test_hybrid_reroutes_around_crash(self):
        sim, maintenance, intra, hybrid = _clustered_stack(vf=0.0, seed=5)
        path = hybrid.route(sim, 0, 40)
        if path is None or len(path) < 3:
            pytest.skip("need a multi-hop route")
        victim = path[1]
        sim.fail_node(victim)
        sim.step()
        fresh = hybrid.route(sim, 0, 40)
        if fresh is not None:
            assert victim not in fresh
            for a, b in zip(fresh, fresh[1:]):
                assert sim.has_link(a, b)

    def test_dsdv_purges_crashed_next_hops(self):
        params = NetworkParameters.from_fractions(
            n_nodes=60, range_fraction=0.25, velocity_fraction=0.0
        )
        sim = Simulation(params, EpochRandomWaypointModel(0.0, 1.0), seed=6)
        dsdv = sim.attach(DsdvProtocol(periodic_interval=0.5))
        victim = 5
        sim.fail_node(victim)
        for _ in range(int(round(4.0 / sim.dt))):
            sim.step()
        # No table may still route *through* the dead node...
        for node in range(sim.n_nodes):
            if node == victim:
                continue
            for destination, entry in dsdv.tables[node].items():
                if entry.next_hop == victim and entry.reachable:
                    pytest.fail(f"{node} still routes via dead node {victim}")

    def test_aodv_rerr_on_crash(self):
        sim = Simulation(
            NetworkParameters.from_fractions(
                n_nodes=60, range_fraction=0.25, velocity_fraction=0.0
            ),
            EpochRandomWaypointModel(0.0, 1.0),
            seed=7,
        )
        aodv = sim.attach(AodvProtocol())
        path = aodv.discover(sim, 0, 30)
        if path is None or len(path) < 3:
            pytest.skip("need a multi-hop route")
        sim.stats.start_measuring()
        sim.fail_node(path[1])
        sim.step()
        assert sim.stats.message_count("aodv_rerr") >= 1
