"""Tests for the experiment registry and the cheap experiments.

The expensive figure sweeps are exercised end-to-end by the benchmark
suite; here we run the analytical and small experiments and assert the
*claims* each one reproduces.
"""

from __future__ import annotations

import pytest

from repro.analysis import Table
from repro.experiments import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.claims import measure_window_degree
from repro.experiments.config import FULL, QUICK, ExperimentScale, scale_for
from repro.experiments.figures45 import (
    measure_lid_head_ratio,
    run_fig4a,
    run_fig4b,
    run_fig5b,
)


class TestRegistry:
    def test_all_ids_registered(self):
        expected = {
            "fig1",
            "fig2",
            "fig3",
            "fig4a",
            "fig4b",
            "fig5a",
            "fig5b",
            "sec6",
            "claim1",
            "claim2",
            "protocols",
            "clustering",
            "mobility",
            "backbone",
            "stability",
            "dhop",
            "adaptive-beaconing",
            "chaos-overhead",
            "ablation-conventions",
            "ablation-route-payload",
            "ablation-boundary",
            "ablation-beacon",
        }
        assert set(experiment_ids()) == expected

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_runner_dispatch(self):
        table = run_experiment("fig4a", quick=True)
        assert isinstance(table, Table)


class TestScale:
    def test_presets(self):
        assert scale_for(True) is QUICK
        assert scale_for(False) is FULL
        assert FULL.n_nodes == 400  # the paper's N

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale("x", 5, 1, 1.0, 0.0, 3)
        with pytest.raises(ValueError):
            ExperimentScale("x", 50, 0, 1.0, 0.0, 3)
        with pytest.raises(ValueError):
            ExperimentScale("x", 50, 1, 1.0, 0.0, 1)


class TestFig4:
    def test_member_mass_approaches_one(self):
        table = run_fig4a()
        masses = [row[2] for row in table.rows]
        assert masses == sorted(masses)
        assert masses[-1] > 0.999

    def test_approximation_error_shrinks(self):
        table = run_fig4b()
        errors = [row[3] for row in table.rows]
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.01


class TestFig5:
    def test_cluster_count_decreases_with_range(self):
        table = run_fig5b(quick=True)
        simulated = [row[2] for row in table.rows]
        analytical = [row[3] for row in table.rows]
        assert simulated == sorted(simulated, reverse=True)
        assert analytical == sorted(analytical, reverse=True)

    def test_measure_lid_head_ratio_bounds(self):
        ratio = measure_lid_head_ratio(50, 0.2, seeds=2)
        assert 0.0 < ratio <= 1.0

    def test_small_degree_regime_agreement(self):
        """Where d is small the Eqn 16 fixpoint tracks simulation well
        (the paper's accurate regime)."""
        from repro.core.degree import expected_degree
        from repro.core.lid_analysis import lid_head_probability_exact

        n, r = 300, 0.04  # d ~ 1.5
        measured = measure_lid_head_ratio(n, r, seeds=6)
        degree = float(expected_degree(n, float(n), r))
        predicted = float(lid_head_probability_exact(degree))
        assert measured == pytest.approx(predicted, rel=0.15)


class TestSec6:
    def test_exponent_table_matches_claims(self):
        table = run_experiment("sec6", quick=True)
        for quantity, parameter, claimed, measured, r_squared in table.rows:
            assert measured == pytest.approx(claimed, abs=0.15), (
                quantity,
                parameter,
            )
            assert r_squared > 0.95 or abs(claimed) < 0.2


class TestClaims:
    def test_claim1_window_degree(self):
        measured = measure_window_degree(150, 0.15, seeds=4)
        from repro.core.degree import expected_degree

        predicted = float(expected_degree(150, 150.0, 0.15))
        assert measured == pytest.approx(predicted, rel=0.1)

    def test_claim2_table_small(self):
        table = run_experiment("claim2", quick=True)
        for _r, model, _analysis, _measured, rel_err in table.rows:
            assert rel_err < 0.25, model


class TestAblations:
    def test_route_payload_table(self):
        table = run_experiment("ablation-route-payload", quick=True)
        shares = [row[-1] for row in table.rows]
        # Full-table ROUTE dominates increasingly with r (Section 6).
        assert shares[-1] > 0.5
        full = [row[5] for row in table.rows]
        per_entry = [row[4] for row in table.rows]
        assert all(f > e for f, e in zip(full, per_entry))
