"""Tests for table rendering (repro.analysis.report)."""

from __future__ import annotations

import pytest

from repro.analysis import Table, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [33, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("long_header")
        assert set(lines[1]) <= {"-", " "}
        # Columns right-aligned: the digit of "1" aligns under "a".
        assert lines[2].startswith(" 1") or lines[2].startswith("1")

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000123456]])
        assert "1.235e-04" in text
        text = format_table(["x"], [[12345.6]])
        assert "e+04" in text or "12350" in text
        text = format_table(["x"], [[0.0]])
        assert "0" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestTable:
    def test_add_row_validates_width(self):
        table = Table(title="t", headers=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_includes_everything(self):
        table = Table(title="My Title", headers=["h1"], notes=["a note"])
        table.add_row(42)
        text = table.render()
        assert "My Title" in text
        assert "=" * len("My Title") in text
        assert "42" in text
        assert "note: a note" in text

    def test_to_csv(self):
        table = Table(title="t", headers=["a", "b"])
        table.add_row(1, "x,y")
        table.add_row(2.5, "plain")
        csv_text = table.to_csv()
        lines = csv_text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == '1,"x,y"'  # comma-containing cell quoted
        assert lines[2] == "2.5,plain"

    def test_save_csv(self, tmp_path):
        table = Table(title="t", headers=["a"])
        table.add_row(7)
        target = tmp_path / "out.csv"
        table.save_csv(target)
        assert target.read_text() == "a\n7\n"
